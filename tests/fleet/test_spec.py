"""Fleet specifications: sampling, apportionment, serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import units
from repro.fleet import FleetSpec, Lot, LotParameter
from repro.sim.config import SimulationConfig


def base_config(**overrides) -> SimulationConfig:
    defaults = dict(
        num_lines=256,
        region_size=256,
        horizon=1 * units.DAY,
        seed=2012,
        endurance=None,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def make_spec(**overrides) -> FleetSpec:
    defaults = dict(
        name="test-fleet",
        devices=8,
        policy="threshold",
        policy_kwargs={"interval": 4 * units.HOUR, "strength": 3, "threshold": 1},
        base_config=base_config(),
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestLotParameter:
    def test_zero_spread_is_exact(self):
        p = LotParameter(mean=1.25)
        assert p.sample(np.random.default_rng(0)) == 1.25

    def test_spread_draws_and_clips(self):
        p = LotParameter(mean=0.0, spread=10.0, low=-1.0, high=1.0)
        rng = np.random.default_rng(1)
        values = [p.sample(rng) for _ in range(50)]
        assert all(-1.0 <= v <= 1.0 for v in values)
        assert min(values) == -1.0 and max(values) == 1.0  # clipping engaged

    def test_sample_always_consumes_one_variate(self):
        # Zero-spread draws must still advance the stream, so adding
        # spread to one parameter never shifts later parameters' draws.
        a, b = np.random.default_rng(7), np.random.default_rng(7)
        LotParameter(mean=1.0).sample(a)
        LotParameter(mean=1.0, spread=0.5).sample(b)
        assert float(a.standard_normal()) == float(b.standard_normal())

    def test_validation(self):
        with pytest.raises(ValueError):
            LotParameter(mean=1.0, spread=-0.1)
        with pytest.raises(ValueError):
            LotParameter(mean=1.0, low=2.0, high=1.0)

    def test_round_trip(self):
        p = LotParameter(mean=1.1, spread=0.2, low=0.0)
        assert LotParameter.from_dict(p.to_dict()) == p


class TestLotValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Lot(name="")

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            Lot(name="x", weight=0.0)


class TestApportionment:
    def test_largest_remainder(self):
        spec = make_spec(
            devices=64,
            lots=(
                Lot(name="a", weight=3),
                Lot(name="b", weight=2),
                Lot(name="c", weight=1),
            ),
        )
        assert spec.lot_counts() == [32, 21, 11]
        assert sum(spec.lot_counts()) == 64

    def test_single_lot_takes_all(self):
        spec = make_spec(devices=5)
        assert spec.lot_counts() == [5]

    def test_block_layout(self):
        spec = make_spec(
            devices=10, lots=(Lot(name="a", weight=1), Lot(name="b", weight=1))
        )
        assert spec.lot_counts() == [5, 5]
        assert [spec.lot_of(i).name for i in range(10)] == ["a"] * 5 + ["b"] * 5
        with pytest.raises(IndexError):
            spec.lot_of(10)

    def test_counts_always_sum_to_devices(self):
        for devices in (1, 7, 13, 64):
            spec = make_spec(
                devices=devices,
                lots=(
                    Lot(name="a", weight=1.7),
                    Lot(name="b", weight=0.9),
                    Lot(name="c", weight=0.4),
                ),
            )
            assert sum(spec.lot_counts()) == devices


class TestDeviceSampling:
    def test_deterministic(self):
        spec = make_spec(
            lots=(Lot(name="a", nu_mu_scale=LotParameter(1.0, 0.1, low=0.0)),)
        )
        assert spec.device_spec(3) == spec.device_spec(3)

    def test_device_params_independent_of_fleet_size(self):
        lots = (Lot(name="a", nu_mu_scale=LotParameter(1.0, 0.1, low=0.0)),)
        small = make_spec(devices=4, lots=lots)
        large = make_spec(devices=8, lots=lots)
        for index in range(4):
            assert small.device_spec(index) == large.device_spec(index)

    def test_degenerate_lot_is_bit_transparent(self):
        spec = make_spec(devices=1)
        device = spec.device_spec(0)
        # Scales are exactly 1.0, temperature inherited, seed + 0: the
        # device config must be the base config, field for field.
        assert device.config == spec.base_config
        assert device.nu_mu_scale == 1.0

    def test_seed_offsets_by_index(self):
        spec = make_spec()
        assert spec.device_spec(5).config.seed == spec.base_config.seed + 5

    def test_lot_overrides_apply(self):
        spec = make_spec(
            lots=(
                Lot(
                    name="hot",
                    nu_mu_scale=LotParameter(1.2),
                    temperature_k=LotParameter(320.0),
                    endurance_mean=LotParameter(1e6),
                ),
            )
        )
        device = spec.device_spec(0)
        assert device.temperature_k == 320.0
        assert device.config.temperature_k == 320.0
        assert device.config.endurance.mean_writes == 1e6
        base_nu = spec.base_config.line.cell.drift[1].nu_mean
        assert device.config.line.cell.drift[1].nu_mean == base_nu * 1.2


class TestValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            make_spec(devices=0)
        with pytest.raises(ValueError):
            make_spec(policy="nonesuch")
        with pytest.raises(ValueError):
            make_spec(lots=())
        with pytest.raises(ValueError):
            make_spec(lots=(Lot(name="a"), Lot(name="a")))
        with pytest.raises(ValueError):
            make_spec(capacity_gib_per_device=0.0)
        with pytest.raises(ValueError):
            make_spec(demand_write_rate=-1.0)
        with pytest.raises(ValueError):
            make_spec(name="")

    def test_rejects_thermal_profile(self):
        from repro.pcm.thermal import ThermalProfile

        profile = ThermalProfile.constant(330.0)
        with pytest.raises(ValueError, match="thermal profiles"):
            make_spec(base_config=base_config(thermal_profile=profile))


class TestSerialization:
    def test_round_trip(self):
        spec = make_spec(
            devices=12,
            lots=(
                Lot(name="a", weight=2, nu_mu_scale=LotParameter(1.05, 0.02, low=0.0)),
                Lot(name="b", temperature_k=LotParameter(310.0, 2.0, low=250.0)),
            ),
            demand_write_rate=5.0,
        )
        clone = FleetSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.content_hash() == spec.content_hash()

    def test_hash_sensitivity(self):
        spec = make_spec()
        assert spec.content_hash() != make_spec(devices=9).content_hash()
        assert (
            spec.content_hash()
            != make_spec(base_config=base_config(seed=13)).content_hash()
        )

    def test_horizon_days_alias(self):
        data = make_spec().to_dict()
        data["config"]["horizon_days"] = 2.0
        del data["config"]["horizon"]
        assert FleetSpec.from_dict(data).base_config.horizon == 2 * units.DAY

    def test_unknown_version_rejected(self):
        data = make_spec().to_dict()
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            FleetSpec.from_dict(data)

    def test_bad_config_key_rejected(self):
        data = make_spec().to_dict()
        data["config"]["nonesuch"] = 1
        with pytest.raises(ValueError, match="config block"):
            FleetSpec.from_dict(data)

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(make_spec().to_dict()))
        assert FleetSpec.from_file(path).content_hash() == make_spec().content_hash()
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            FleetSpec.from_file(path)

    def test_obs_and_verify_ride_through(self):
        data = make_spec().to_dict()
        data["config"]["verify"] = {"invariants": True, "check_every": 16}
        spec = FleetSpec.from_dict(data)
        assert spec.base_config.verify.invariants
        assert spec.device_spec(0).config.verify.check_every == 16


class TestGeometry:
    def test_capacity_scale_and_device_hours(self):
        spec = make_spec(capacity_gib_per_device=16.0)
        assert spec.simulated_gib_per_device == pytest.approx(
            256 * spec.base_config.line.data_bytes / (1024**3)
        )
        assert spec.capacity_scale == pytest.approx(
            16.0 / spec.simulated_gib_per_device
        )
        assert spec.device_hours == pytest.approx(8 * 24.0)


class TestLotPolicies:
    def lot_spec(self, **lot_overrides) -> FleetSpec:
        return make_spec(
            lots=(
                Lot(name="plain"),
                Lot(name="tuned", **lot_overrides),
            )
        )

    def test_inherit_by_default(self):
        spec = self.lot_spec()
        assert spec.policy_for("plain") == (spec.policy, spec.policy_kwargs)
        assert spec.policy_for("tuned") == (spec.policy, spec.policy_kwargs)
        assert not spec.has_lot_policies

    def test_kwargs_merge_over_fleet_for_same_policy(self):
        spec = self.lot_spec(policy_kwargs={"interval": 900.0})
        policy, kwargs = spec.policy_for("tuned")
        assert policy == spec.policy
        assert kwargs["interval"] == 900.0
        assert kwargs["strength"] == spec.policy_kwargs["strength"]
        assert spec.has_lot_policies

    def test_different_policy_takes_lot_kwargs_verbatim(self):
        # Fleet kwargs are factory-specific (``basic`` takes only
        # ``interval``), so they must not leak across factories.
        spec = self.lot_spec(policy="basic", policy_kwargs={"interval": 600.0})
        assert spec.policy_for("tuned") == ("basic", {"interval": 600.0})
        assert spec.run_spec(spec.lot_indices("tuned")[0]).policy == "basic"

    def test_run_spec_uses_lot_policy(self):
        spec = self.lot_spec(policy_kwargs={"interval": 1234.0})
        tuned_index = spec.lot_indices("tuned")[0]
        plain_index = spec.lot_indices("plain")[0]
        assert spec.run_spec(tuned_index).policy_kwargs["interval"] == 1234.0
        assert spec.run_spec(plain_index).policy_kwargs["interval"] == (
            spec.policy_kwargs["interval"]
        )

    def test_lot_indices_and_named(self):
        spec = self.lot_spec()
        assert spec.lot_named("tuned").name == "tuned"
        indices = spec.lot_indices("tuned")
        assert all(spec.device_spec(i).lot == "tuned" for i in indices)
        with pytest.raises(KeyError):
            spec.lot_named("nonesuch")
        with pytest.raises(KeyError):
            spec.lot_indices("nonesuch")

    def test_unknown_lot_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            Lot(name="x", policy="nonesuch")

    def test_hash_backward_compatible_without_overrides(self):
        # A spec whose lots carry no overrides must serialize (and hash)
        # exactly as it did before per-lot provisioning existed: the new
        # keys are omitted, not emitted as null.
        spec = self.lot_spec()
        for lot in spec.to_dict()["lots"]:
            assert "policy" not in lot
            assert "policy_kwargs" not in lot
        pre_provisioning = json.loads(json.dumps(spec.to_dict()))
        assert FleetSpec.from_dict(pre_provisioning).content_hash() == (
            spec.content_hash()
        )

    def test_overrides_change_hash_and_round_trip(self):
        plain = self.lot_spec()
        tuned = self.lot_spec(
            policy="threshold",
            policy_kwargs={"interval": 900.0, "strength": 2, "threshold": 1},
        )
        assert tuned.content_hash() != plain.content_hash()
        round_tripped = FleetSpec.from_dict(
            json.loads(json.dumps(tuned.to_dict()))
        )
        assert round_tripped.content_hash() == tuned.content_hash()
        assert round_tripped.policy_for("tuned") == tuned.policy_for("tuned")

    def test_overrides_leave_device_sampling_alone(self):
        plain = self.lot_spec()
        tuned = self.lot_spec(policy="basic", policy_kwargs={"interval": 60.0})
        for index in range(plain.devices):
            assert plain.device_spec(index).config == (
                tuned.device_spec(index).config
            )
