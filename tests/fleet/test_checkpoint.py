"""Checkpoint journal: durability, corruption handling, hash binding."""

from __future__ import annotations

import pytest

from repro.fleet.checkpoint import (
    JOURNAL_VERSION,
    CheckpointError,
    append_device,
    load_journal,
    write_header,
)

HASH = "a" * 64


def journal_with(tmp_path, records):
    path = tmp_path / "journal.jsonl"
    write_header(path, HASH, "test")
    for record in records:
        append_device(path, record)
    return path


class TestRoundTrip:
    def test_header_and_devices(self, tmp_path):
        path = journal_with(
            tmp_path,
            [{"index": 0, "summary": {"uncorrectable": 1.0}}, {"index": 1}],
        )
        header, devices = load_journal(path, expected_hash=HASH)
        assert header["version"] == JOURNAL_VERSION
        assert header["name"] == "test"
        assert set(devices) == {0, 1}
        assert devices[0]["summary"] == {"uncorrectable": 1.0}
        assert devices[0]["kind"] == "device"

    def test_header_truncates_existing_file(self, tmp_path):
        path = journal_with(tmp_path, [{"index": 0}])
        write_header(path, HASH, "restart")
        header, devices = load_journal(path)
        assert header["name"] == "restart"
        assert devices == {}

    def test_duplicate_index_last_wins(self, tmp_path):
        path = journal_with(
            tmp_path, [{"index": 0, "v": 1}, {"index": 0, "v": 2}]
        )
        __, devices = load_journal(path)
        assert devices[0]["v"] == 2


class TestCorruption:
    def test_torn_final_line_dropped(self, tmp_path):
        path = journal_with(tmp_path, [{"index": 0}, {"index": 1}])
        with open(path, "a") as handle:
            handle.write('{"kind": "device", "index": 2, "summ')  # killed mid-append
        __, devices = load_journal(path)
        assert set(devices) == {0, 1}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = journal_with(tmp_path, [{"index": 0}])
        content = path.read_text()
        path.write_text(content.replace('"index": 0', '"index": 0 GARBAGE'))
        append_device(path, {"index": 1})
        with pytest.raises(CheckpointError, match="corrupt"):
            load_journal(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        with pytest.raises(CheckpointError, match="empty"):
            load_journal(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "device", "index": 0}\n')
        with pytest.raises(CheckpointError, match="header"):
            load_journal(path)

    def test_non_device_record_raises(self, tmp_path):
        path = journal_with(tmp_path, [])
        with open(path, "a") as handle:
            handle.write('{"kind": "mystery"}\n{"kind": "device", "index": 0}\n')
        with pytest.raises(CheckpointError, match="not a device record"):
            load_journal(path)


class TestBinding:
    def test_hash_mismatch_raises(self, tmp_path):
        path = journal_with(tmp_path, [{"index": 0}])
        with pytest.raises(CheckpointError, match="different campaign"):
            load_journal(path, expected_hash="b" * 64)

    def test_version_mismatch_raises(self, tmp_path):
        path = journal_with(tmp_path, [])
        content = path.read_text().replace(
            f'"version": {JOURNAL_VERSION}', '"version": 99'
        )
        path.write_text(content)
        with pytest.raises(CheckpointError, match="version"):
            load_journal(path)
