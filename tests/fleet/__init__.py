"""Fleet campaign subsystem tests."""
