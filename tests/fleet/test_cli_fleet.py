"""The ``pcm-scrub fleet`` subcommand: tables, JSON output, resume flow."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fleet import FleetSpec


@pytest.fixture
def spec_path(tmp_path):
    spec = {
        "version": 1,
        "name": "cli-fleet",
        "devices": 4,
        "policy": "threshold",
        "policy_kwargs": {"interval": 14400.0, "strength": 3, "threshold": 1},
        "capacity_gib_per_device": 16.0,
        "config": {
            "num_lines": 256,
            "region_size": 256,
            "horizon_days": 1.0,
            "seed": 2012,
            "endurance": None,
        },
        "lots": [
            {"name": "a", "weight": 1},
            {
                "name": "b",
                "weight": 1,
                "nu_sigma_scale": {"mean": 1.2, "spread": 0.05, "low": 0.0},
            },
        ],
    }
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(spec))
    return path


class TestFleetCommand:
    def test_report_tables(self, spec_path, capsys):
        assert main(["fleet", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "Fleet campaign 'cli-fleet'" in out
        assert "Fleet reliability" in out
        assert "Per-lot breakdown" in out
        assert "uncorrectable errors" in out
        assert "availability" in out

    def test_json_output(self, spec_path, tmp_path, capsys):
        report_path = tmp_path / "out" / "report.json"
        assert main(["fleet", str(spec_path), "--json", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["name"] == "cli-fleet"
        assert payload["devices"] == 4
        assert "fit" in payload and "availability" in payload
        assert len(payload["lots"]) == 2

    def test_checkpoint_stop_and_resume_round_trip(
        self, spec_path, tmp_path, capsys
    ):
        journal = tmp_path / "campaign.jsonl"
        straight_json = tmp_path / "straight.json"
        resumed_json = tmp_path / "resumed.json"

        assert main(["fleet", str(spec_path), "--json", str(straight_json)]) == 0

        assert (
            main([
                "fleet", str(spec_path), "--checkpoint", str(journal),
                "--stop-after", "2",
            ])
            == 0
        )
        assert "resume" in capsys.readouterr().out

        assert (
            main([
                "fleet", str(spec_path), "--checkpoint", str(journal),
                "--resume", "--json", str(resumed_json),
            ])
            == 0
        )
        assert json.loads(straight_json.read_text()) == json.loads(
            resumed_json.read_text()
        )

    def test_spec_parses_cleanly(self, spec_path):
        spec = FleetSpec.from_file(spec_path)
        assert spec.devices == 4
        assert [lot.name for lot in spec.lots] == ["a", "b"]

    def test_bad_spec_path_errors(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        with pytest.raises((SystemExit, FileNotFoundError, ValueError)):
            main(["fleet", str(missing)])
