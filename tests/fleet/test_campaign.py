"""Campaign execution: equivalence, resume bit-identity, pool invariance."""

from __future__ import annotations

import json

import pytest

from repro import units
from repro.fleet import (
    CampaignRunner,
    CheckpointError,
    FleetSpec,
    Lot,
    LotParameter,
    load_journal,
    run_campaign,
)
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_experiment
from repro.core import threshold_scrub

POLICY_KWARGS = {"interval": 4 * units.HOUR, "strength": 3, "threshold": 1}


def base_config(**overrides) -> SimulationConfig:
    defaults = dict(
        num_lines=256,
        region_size=256,
        horizon=1 * units.DAY,
        seed=2012,
        endurance=None,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def hetero_spec(devices=6) -> FleetSpec:
    return FleetSpec(
        name="hetero",
        devices=devices,
        policy="threshold",
        policy_kwargs=POLICY_KWARGS,
        base_config=base_config(),
        lots=(
            Lot(
                name="a",
                weight=2,
                nu_mu_scale=LotParameter(1.0, 0.05, low=0.0),
            ),
            Lot(
                name="b",
                weight=1,
                nu_sigma_scale=LotParameter(1.2, 0.1, low=0.0),
                temperature_k=LotParameter(310.0, 2.0, low=250.0),
            ),
        ),
    )


def report_json(outcome) -> str:
    return json.dumps(outcome.report.to_dict(), sort_keys=True)


class TestSingleDeviceEquivalence:
    def test_degenerate_fleet_reproduces_run_experiment(self):
        config = base_config()
        spec = FleetSpec(
            name="one",
            devices=1,
            policy="threshold",
            policy_kwargs=POLICY_KWARGS,
            base_config=config,
        )
        outcome = run_campaign(spec)
        direct = run_experiment(threshold_scrub(**POLICY_KWARGS), config)
        record = next(iter(outcome.report.lots))
        assert outcome.report.uncorrectable == direct.stats.uncorrectable
        assert record.counts["scrub_writes"] == direct.stats.scrub_writes
        assert outcome.report.scrub_energy_j == direct.stats.scrub_energy
        assert outcome.report.counts["visits"] == direct.stats.visits


class TestPoolInvariance:
    def test_jobs_do_not_change_the_report(self):
        spec = hetero_spec()
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=2)
        assert report_json(serial) == report_json(parallel)


class TestResume:
    def test_interrupted_resume_is_bit_identical(self, tmp_path):
        spec = hetero_spec()
        straight = run_campaign(spec, jobs=2)

        journal = tmp_path / "campaign.jsonl"
        partial = run_campaign(spec, jobs=2, checkpoint=journal, stop_after=3)
        assert not partial.finished
        assert partial.report is None
        assert partial.completed == 3

        resumed = run_campaign(spec, jobs=2, checkpoint=journal, resume=True)
        assert resumed.finished
        assert resumed.executed == spec.devices - 3
        assert report_json(resumed) == report_json(straight)

    def test_resume_with_torn_tail(self, tmp_path):
        spec = hetero_spec()
        straight = run_campaign(spec)
        journal = tmp_path / "campaign.jsonl"
        run_campaign(spec, checkpoint=journal, stop_after=4)
        with open(journal, "a") as handle:
            handle.write('{"kind": "device", "index": 4, "sum')  # killed append
        resumed = run_campaign(spec, checkpoint=journal, resume=True)
        assert resumed.finished
        assert resumed.executed == spec.devices - 4
        assert report_json(resumed) == report_json(straight)

    def test_resume_of_finished_campaign_executes_nothing(self, tmp_path):
        spec = hetero_spec(devices=2)
        journal = tmp_path / "campaign.jsonl"
        first = run_campaign(spec, checkpoint=journal)
        again = run_campaign(spec, checkpoint=journal, resume=True)
        assert again.executed == 0
        assert report_json(again) == report_json(first)

    def test_journal_counts_match_completion(self, tmp_path):
        spec = hetero_spec(devices=3)
        journal = tmp_path / "campaign.jsonl"
        run_campaign(spec, checkpoint=journal)
        header, devices = load_journal(journal, expected_hash=spec.content_hash())
        assert header["name"] == "hetero"
        assert set(devices) == {0, 1, 2}


class TestGuards:
    def test_existing_checkpoint_without_resume_refused(self, tmp_path):
        spec = hetero_spec(devices=2)
        journal = tmp_path / "campaign.jsonl"
        run_campaign(spec, checkpoint=journal, stop_after=1)
        with pytest.raises(CheckpointError, match="resume"):
            run_campaign(spec, checkpoint=journal)

    def test_resume_rejects_foreign_journal(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        run_campaign(hetero_spec(devices=2), checkpoint=journal, stop_after=1)
        other = hetero_spec(devices=3)
        with pytest.raises(CheckpointError, match="different campaign"):
            run_campaign(other, checkpoint=journal, resume=True)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="checkpoint"):
            CampaignRunner(hetero_spec(devices=2), resume=True)

    def test_stop_after_must_be_positive(self):
        with pytest.raises(ValueError, match="stop_after"):
            CampaignRunner(hetero_spec(devices=2), stop_after=0)


class TestOutcome:
    def test_outcome_bookkeeping(self):
        spec = hetero_spec(devices=2)
        outcome = run_campaign(spec)
        assert outcome.finished
        assert outcome.completed == outcome.executed == outcome.total == 2
        assert outcome.wall_seconds > 0
        # The acceptance invariant, re-asserted from the outside: the
        # fleet UE total equals the sum of per-lot partial sums.
        assert sum(
            lot.counts["uncorrectable"] for lot in outcome.report.lots
        ) == outcome.report.uncorrectable


class TestUntil:
    def test_until_completes_prefix_and_journals_pending(self, tmp_path):
        spec = hetero_spec()
        journal = tmp_path / "campaign.jsonl"
        partial = run_campaign(spec, checkpoint=journal, until=4)
        assert not partial.finished
        assert partial.completed == 4
        _, devices = load_journal(journal, expected_hash=spec.content_hash())
        assert set(devices) == {0, 1, 2, 3}
        # The pending marker names exactly the unfinished indices.
        lines = [json.loads(line) for line in journal.read_text().splitlines()]
        pending = [line for line in lines if line["kind"] == "pending"]
        assert pending and pending[-1]["indices"] == [4, 5]

    def test_incremental_until_then_resume_is_bit_identical(self, tmp_path):
        spec = hetero_spec()
        straight = run_campaign(spec, jobs=2)
        journal = tmp_path / "campaign.jsonl"
        run_campaign(spec, checkpoint=journal, until=2)
        run_campaign(spec, checkpoint=journal, resume=True, until=5)
        final = run_campaign(spec, checkpoint=journal, resume=True)
        assert final.finished
        assert report_json(final) == report_json(straight)

    def test_until_beyond_fleet_finishes(self, tmp_path):
        spec = hetero_spec(devices=2)
        straight = run_campaign(spec)
        journal = tmp_path / "campaign.jsonl"
        done = run_campaign(spec, checkpoint=journal, until=99)
        assert done.finished
        assert report_json(done) == report_json(straight)

    def test_until_must_be_positive(self):
        with pytest.raises(ValueError, match="until"):
            CampaignRunner(hetero_spec(), until=0)
