"""Command-line interface smoke and content tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

FAST = ["--lines", "512", "--horizon-days", "1"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.seed == 2012
        assert args.workload == "idle"


class TestCommands:
    def test_drift_curve(self, capsys):
        assert main(["drift-curve", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "L0" in out and "L3" in out
        assert out.count("\n") >= 7

    def test_compare(self, capsys):
        assert main([*FAST, "compare", "--interval", "3600"]) == 0
        out = capsys.readouterr().out
        assert "basic(secded)" in out
        assert "combined" in out

    def test_compare_with_workload(self, capsys):
        assert (
            main([*FAST, "compare", "--workload", "zipf", "--write-rate", "50"]) == 0
        )
        assert "Mechanism comparison" in capsys.readouterr().out

    def test_headline(self, capsys):
        assert main([*FAST, "headline"]) == 0
        out = capsys.readouterr().out
        assert "96.5%" in out  # the paper targets are printed alongside
        assert "24.4x" in out
        assert "37.8%" in out

    def test_sweep(self, capsys):
        assert (
            main([*FAST, "sweep", "--policy", "threshold", "--intervals", "3600", "7200"])
            == 0
        )
        out = capsys.readouterr().out
        assert "1h" in out and "2h" in out

    def test_provision(self, capsys):
        assert main(["provision", "--budget", "1e-4", "--strengths", "1", "8"]) == 0
        out = capsys.readouterr().out
        assert "bch1" in out and "bch8" in out
        assert "affordable interval" in out

    def test_lifetime(self, capsys):
        assert main(["lifetime", "--demand-writes-per-hour", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "years to wear-out" in out
        assert "bch8 theta=6" in out

    def test_compare_compensated(self, capsys):
        assert main([*FAST, "compare", "--compensated"]) == 0
        assert "Mechanism comparison" in capsys.readouterr().out

    def test_export_csv(self, capsys, tmp_path):
        out = tmp_path / "runs.csv"
        assert main([*FAST, "export", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("policy,")
        assert "combined" in text
        assert "wrote 5 runs" in capsys.readouterr().out

    def test_seed_changes_output(self, capsys):
        main([*FAST, "compare"])
        first = capsys.readouterr().out
        main([*FAST, "--seed", "77", "compare"])
        second = capsys.readouterr().out
        assert first != second


class TestObservability:
    def test_trace_writes_artifacts(self, capsys, tmp_path):
        import json

        out = tmp_path / "obs"
        assert (
            main([*FAST, "trace", "--policy", "adaptive", "--samples", "4",
                  "--out", str(out)])
            == 0
        )
        printed = capsys.readouterr().out
        assert "Telemetry for" in printed
        assert "Wall-time profile" in printed
        events = [
            json.loads(line)
            for line in (out / "trace.jsonl").read_text().splitlines()
        ]
        assert events and all("event" in e and "t" in e for e in events)
        series = json.loads((out / "timeseries.json").read_text())
        # N-1 grid samples plus the final one exactly at the horizon.
        assert len(series["samples"]) == 4

    def test_sweep_timeseries_and_profile(self, capsys, tmp_path):
        import json

        path = tmp_path / "ts.json"
        assert (
            main([*FAST, "sweep", "--policy", "basic",
                  "--intervals", "3600", "7200",
                  "--timeseries", str(path), "--profile"])
            == 0
        )
        printed = capsys.readouterr().out
        assert "wrote time series" in printed
        assert "profile" in printed.lower()
        blob = json.loads(path.read_text())
        assert len(blob["runs"]) == 2
        assert "merged" in blob

    def test_reduction_cell_degrades_to_na(self):
        from repro.cli import _reduction_cell

        def boom() -> float:
            raise ZeroDivisionError("baseline saw no uncorrectable errors")

        cell = _reduction_cell(boom, "96.5%")
        assert cell.startswith("n/a")
        assert "96.5%" in cell
        assert _reduction_cell(lambda: 0.5, "96.5%") == "50.0% reduction (paper: 96.5%)"
