"""Command-line interface smoke and content tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

FAST = ["--lines", "512", "--horizon-days", "1"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.seed == 2012
        assert args.workload == "idle"


class TestCommands:
    def test_drift_curve(self, capsys):
        assert main(["drift-curve", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "L0" in out and "L3" in out
        assert out.count("\n") >= 7

    def test_compare(self, capsys):
        assert main([*FAST, "compare", "--interval", "3600"]) == 0
        out = capsys.readouterr().out
        assert "basic(secded)" in out
        assert "combined" in out

    def test_compare_with_workload(self, capsys):
        assert (
            main([*FAST, "compare", "--workload", "zipf", "--write-rate", "50"]) == 0
        )
        assert "Mechanism comparison" in capsys.readouterr().out

    def test_headline(self, capsys):
        assert main([*FAST, "headline"]) == 0
        out = capsys.readouterr().out
        assert "96.5%" in out  # the paper targets are printed alongside
        assert "24.4x" in out
        assert "37.8%" in out

    def test_sweep(self, capsys):
        assert (
            main([*FAST, "sweep", "--policy", "threshold", "--intervals", "3600", "7200"])
            == 0
        )
        out = capsys.readouterr().out
        assert "1h" in out and "2h" in out

    def test_provision(self, capsys):
        assert main(["provision", "--budget", "1e-4", "--strengths", "1", "8"]) == 0
        out = capsys.readouterr().out
        assert "bch1" in out and "bch8" in out
        assert "affordable interval" in out

    def test_lifetime(self, capsys):
        assert main(["lifetime", "--demand-writes-per-hour", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "years to wear-out" in out
        assert "bch8 theta=6" in out

    def test_compare_compensated(self, capsys):
        assert main([*FAST, "compare", "--compensated"]) == 0
        assert "Mechanism comparison" in capsys.readouterr().out

    def test_export_csv(self, capsys, tmp_path):
        out = tmp_path / "runs.csv"
        assert main([*FAST, "export", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("policy,")
        assert "combined" in text
        assert "wrote 5 runs" in capsys.readouterr().out

    def test_seed_changes_output(self, capsys):
        main([*FAST, "compare"])
        first = capsys.readouterr().out
        main([*FAST, "--seed", "77", "compare"])
        second = capsys.readouterr().out
        assert first != second
