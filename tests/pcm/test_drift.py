"""Drift model: power law, crossing times, temperature, analytic validation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.params import CellSpec, DriftParams, replace
from repro.pcm.drift import DriftModel, arrhenius_acceleration


@pytest.fixture
def model(cell_spec) -> DriftModel:
    return DriftModel(cell_spec)


class TestArrhenius:
    def test_reference_temperature_is_unity(self):
        assert arrhenius_acceleration(300.0, 300.0, 0.2) == pytest.approx(1.0)

    def test_hotter_is_faster(self):
        assert arrhenius_acceleration(330.0, 300.0, 0.2) > 1.0
        assert arrhenius_acceleration(270.0, 300.0, 0.2) < 1.0

    def test_monotone_in_temperature(self):
        temps = [280, 300, 320, 340, 360]
        accs = [arrhenius_acceleration(t, 300.0, 0.2) for t in temps]
        assert accs == sorted(accs)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            arrhenius_acceleration(-1, 300, 0.2)


class TestPowerLaw:
    def test_no_drift_before_t0(self, model):
        r0 = np.array([5.1])
        nu = np.array([0.06])
        assert model.resistance_at(r0, nu, 0.5)[0] == pytest.approx(5.1)

    def test_one_decade_per_inverse_nu(self, model):
        # r(t) - r0 = nu * log10(t); at t = 10^(1/nu) the shift is 1 decade.
        nu = 0.05
        t = 10 ** (1 / nu)
        shifted = model.resistance_at(np.array([5.0]), np.array([nu]), t)[0]
        assert shifted == pytest.approx(6.0, abs=1e-9)

    def test_monotone_in_time(self, model):
        r0 = np.array([5.1])
        nu = np.array([0.06])
        values = [model.resistance_at(r0, nu, t)[0] for t in (1, 10, 1e3, 1e6)]
        assert values == sorted(values)

    def test_negative_elapsed_rejected(self, model):
        with pytest.raises(ValueError):
            model.resistance_at(np.array([5.0]), np.array([0.1]), -1.0)


class TestCrossingTimes:
    def test_top_level_never_crosses(self, model, rng):
        times = model.sample_crossing_times(np.full(1000, 3, dtype=np.int8), rng)
        assert np.isinf(times).all()

    def test_zero_nu_never_crosses(self, cell_spec):
        frozen = replace(
            cell_spec,
            drift=tuple(DriftParams(0.0, 0.0) for __ in cell_spec.drift),
        )
        model = DriftModel(frozen)
        rng = np.random.default_rng(0)
        times = model.sample_crossing_times(np.full(100, 2, dtype=np.int8), rng)
        assert np.isinf(times).all()

    def test_crossing_formula(self, model):
        # Hand-check: t_cross = t0 * 10^((B - r0)/nu).
        spec = model.spec
        boundary = spec.levels[2].read_high
        r0, nu = 5.1, 0.05
        expected = spec.t0 * 10 ** ((boundary - r0) / nu)
        got = model.crossing_time(
            np.array([2]), np.array([r0]), np.array([nu])
        )[0]
        assert got == pytest.approx(expected)

    def test_crossing_matches_resistance_evolution(self, model, rng):
        # At the crossing time the resistance equals the boundary.
        symbols = np.full(50, 2, dtype=np.int8)
        r0 = model.sample_programmed_resistance(symbols, rng)
        nu = model.sample_drift_exponent(symbols, rng)
        t_cross = model.crossing_time(symbols, r0, nu)
        finite = np.isfinite(t_cross) & (t_cross > model.spec.t0)
        boundary = model.spec.levels[2].read_high
        at_cross = np.array(
            [
                model.resistance_at(r0[i : i + 1], nu[i : i + 1], t_cross[i])[0]
                for i in np.flatnonzero(finite)
            ]
        )
        assert np.allclose(at_cross, boundary, atol=1e-9)

    def test_hot_crossing_is_sooner(self, cell_spec, rng):
        cold = DriftModel(cell_spec, temperature_k=300.0)
        hot = DriftModel(cell_spec, temperature_k=350.0)
        symbols = np.array([2])
        r0 = np.array([5.1])
        nu = np.array([0.06])
        assert hot.crossing_time(symbols, r0, nu)[0] < cold.crossing_time(
            symbols, r0, nu
        )[0]


class TestSampling:
    def test_programmed_resistance_in_band(self, model, rng):
        for level, band in enumerate(model.spec.levels):
            symbols = np.full(2000, level, dtype=np.int8)
            r0 = model.sample_programmed_resistance(symbols, rng)
            assert (r0 >= band.program_low).all()
            assert (r0 <= band.program_high).all()

    def test_drift_exponents_nonnegative(self, model, rng):
        symbols = np.repeat(np.arange(4, dtype=np.int8), 500)
        nu = model.sample_drift_exponent(symbols, rng)
        assert (nu >= 0).all()

    def test_drift_exponent_means_match_spec(self, model, rng):
        for level, params in enumerate(model.spec.drift):
            symbols = np.full(20000, level, dtype=np.int8)
            nu = model.sample_drift_exponent(symbols, rng)
            # Truncation at 0 is >2 sigma away, so means match to ~1%.
            assert nu.mean() == pytest.approx(params.nu_mean, rel=0.05)


class TestAnalyticErrorProbability:
    def test_zero_at_t0(self, model):
        for level in range(4):
            assert model.error_probability(level, 0.5) == 0.0

    def test_top_level_always_zero(self, model):
        assert model.error_probability(3, units.YEAR) == 0.0

    def test_monotone_in_time(self, model):
        times = [60, 3600, 86400, units.YEAR]
        probs = [model.error_probability(2, t) for t in times]
        assert probs == sorted(probs)
        assert probs[-1] > 0.1

    def test_l2_dominates(self, model):
        # L2 has the worst drift-to-guard-band ratio in the default spec.
        t = units.DAY
        p = [model.error_probability(level, t) for level in range(4)]
        assert p[2] == max(p)

    @pytest.mark.parametrize("elapsed", [units.HOUR, units.DAY])
    def test_matches_monte_carlo(self, model, elapsed):
        rng = np.random.default_rng(7)
        n = 400_000
        times = model.sample_crossing_times(np.full(n, 2, dtype=np.int8), rng)
        mc = (times <= elapsed).mean()
        analytic = model.error_probability(2, elapsed)
        # MC stderr ~ sqrt(p/n); allow 4 sigma plus small absolute slack.
        sigma = math.sqrt(max(analytic, 1e-12) / n)
        assert abs(mc - analytic) < 4 * sigma + 2e-5

    def test_hotter_is_worse(self, cell_spec):
        cold = DriftModel(cell_spec, temperature_k=300.0)
        hot = DriftModel(cell_spec, temperature_k=340.0)
        assert hot.error_probability(2, units.HOUR) > cold.error_probability(
            2, units.HOUR
        )

    def test_invalid_arguments(self, model):
        with pytest.raises(ValueError):
            model.error_probability(9, 10.0)
        with pytest.raises(ValueError):
            model.error_probability(1, -1.0)


@given(
    nu_mean=st.floats(0.01, 0.2),
    margin=st.floats(0.1, 1.0),
)
@settings(max_examples=30, deadline=None)
def test_property_larger_nu_crosses_sooner(nu_mean, margin):
    """Deterministic crossing times shrink as nu grows, for any margin."""
    spec = CellSpec()
    model = DriftModel(spec)
    boundary = spec.levels[2].read_high
    r0 = np.array([boundary - margin])
    slow = model.crossing_time(np.array([2]), r0, np.array([nu_mean]))[0]
    fast = model.crossing_time(np.array([2]), r0, np.array([nu_mean * 2]))[0]
    assert fast <= slow
