"""Level coder: Gray coding, bit packing, and resistance thresholding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import CellSpec
from repro.pcm.levels import LevelCoder, gray_decode, gray_encode

CODER = LevelCoder(CellSpec())


class TestGrayCode:
    @given(value=st.integers(0, 10_000))
    def test_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(value=st.integers(0, 10_000))
    def test_adjacent_values_differ_in_one_bit(self, value):
        a, b = gray_encode(value), gray_encode(value + 1)
        assert (a ^ b).bit_count() == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_encode(-1)
        with pytest.raises(ValueError):
            gray_decode(-1)


class TestSymbolMapping:
    def test_bijection(self):
        patterns = [CODER.symbol_to_pattern(s) for s in range(4)]
        assert sorted(patterns) == [0, 1, 2, 3]
        for symbol in range(4):
            assert CODER.pattern_to_symbol(CODER.symbol_to_pattern(symbol)) == symbol

    def test_adjacent_symbols_one_bit_apart(self):
        # The property that makes one drifted cell one bit error.
        for symbol in range(3):
            a = CODER.symbol_to_pattern(symbol)
            b = CODER.symbol_to_pattern(symbol + 1)
            assert CODER.bit_errors_between(a, b) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CODER.pattern_to_symbol(4)
        with pytest.raises(ValueError):
            CODER.symbol_to_pattern(-1)

    def test_vectorized_matches_scalar(self, rng):
        patterns = rng.integers(0, 4, 100)
        symbols = CODER.patterns_to_symbols(patterns)
        assert all(
            s == CODER.pattern_to_symbol(int(p)) for s, p in zip(symbols, patterns)
        )
        back = CODER.symbols_to_patterns(symbols)
        assert np.array_equal(back, patterns)


class TestBitPacking:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=40)
    def test_bits_symbols_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 64, dtype=np.int8)
        symbols = CODER.bits_to_symbols(bits)
        assert symbols.shape == (32,)
        assert np.array_equal(CODER.symbols_to_bits(symbols), bits)

    def test_misaligned_bits_rejected(self):
        with pytest.raises(ValueError):
            CODER.bits_to_symbols([0, 1, 0])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            CODER.bits_to_symbols([0, 2])


class TestSensing:
    def test_band_centers_sense_correctly(self):
        spec = CellSpec()
        for level, band in enumerate(spec.levels):
            assert CODER.sense(band.program_center) == level

    def test_boundary_crossing_moves_up_one_level(self):
        spec = CellSpec()
        for level, band in enumerate(spec.levels[:-1]):
            just_above = band.read_high + 1e-9
            assert CODER.sense(just_above) == level + 1

    def test_sense_many_matches_scalar(self, rng):
        values = rng.uniform(2.0, 7.0, 200)
        vector = CODER.sense_many(values)
        assert all(v == CODER.sense(float(x)) for v, x in zip(vector, values))

    def test_upper_boundary_top_level_infinite(self):
        assert CODER.upper_boundary(3) == float("inf")
        assert CODER.upper_boundary(0) == CellSpec().levels[0].read_high
