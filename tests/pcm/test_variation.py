"""Process variation draws."""

from __future__ import annotations

import pytest

from repro.pcm.variation import VariationSpec, draw_variation


class TestDraws:
    def test_shapes_and_moments(self, rng):
        spec = VariationSpec(resistance_offset_sigma=0.05, drift_factor_sigma=0.2)
        variation = draw_variation(spec, 50_000, rng)
        assert variation.num_cells == 50_000
        assert abs(variation.resistance_offset.mean()) < 0.002
        assert variation.resistance_offset.std() == pytest.approx(0.05, rel=0.05)
        assert variation.drift_factor.mean() == pytest.approx(1.0, abs=0.01)

    def test_drift_factor_floor(self, rng):
        # Huge sigma would produce negative factors without the floor.
        spec = VariationSpec(drift_factor_sigma=2.0)
        variation = draw_variation(spec, 10_000, rng)
        assert (variation.drift_factor >= 0.1).all()

    def test_zero_cells(self, rng):
        variation = draw_variation(VariationSpec(), 0, rng)
        assert variation.num_cells == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            VariationSpec(resistance_offset_sigma=-0.1)
        with pytest.raises(ValueError):
            VariationSpec(drift_factor_sigma=-0.1)
        with pytest.raises(ValueError):
            draw_variation(VariationSpec(), -5, rng)
