"""Drift-compensated read references."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.params import CellSpec
from repro.pcm.drift import DriftModel
from repro.pcm.reference import CompensatedSensing
from repro.sim.analytic import CrossingDistribution


@pytest.fixture(scope="module")
def compensated() -> CompensatedSensing:
    return CompensatedSensing(CellSpec())


@pytest.fixture(scope="module")
def plain() -> DriftModel:
    return DriftModel(CellSpec())


class TestBoundaryShift:
    def test_zero_before_t0(self, compensated):
        assert compensated.boundary_shift(2, 0.5) == 0.0

    def test_tracks_mean_drift(self, compensated):
        spec = compensated.spec
        age = units.DAY
        expected = spec.drift[2].nu_mean * np.log10(age)
        assert compensated.boundary_shift(2, age) == pytest.approx(expected)

    def test_out_of_range(self, compensated):
        with pytest.raises(ValueError):
            compensated.boundary_shift(3, 1.0)


class TestErrorProbability:
    @pytest.mark.parametrize("age", [units.HOUR, units.DAY, units.WEEK])
    def test_orders_of_magnitude_better_than_plain(self, compensated, plain, age):
        worst_plain = max(plain.error_probability(l, age) for l in range(4))
        worst_comp = max(compensated.error_probability(l, age) for l in range(4))
        assert worst_comp < worst_plain / 20

    def test_still_nonzero_at_long_ages(self, compensated):
        # Compensation delays errors; the spread wins eventually.
        assert compensated.error_probability(2, units.YEAR) > 0

    def test_downward_misreads_exist(self, compensated):
        # Level 3 never errs upward (top), but the moving boundary beneath
        # it (tracking L2's fast mean) overtakes slow L3 cells.
        probability = compensated.error_probability(3, 10 * units.YEAR)
        assert probability > 0

    def test_level0_upward_only_and_tiny(self, compensated):
        assert compensated.error_probability(0, units.YEAR) < 1e-9

    def test_validation(self, compensated):
        with pytest.raises(ValueError):
            compensated.error_probability(5, 1.0)
        with pytest.raises(ValueError):
            compensated.error_probability(1, -1.0)


class TestMonteCarlo:
    @pytest.mark.parametrize("level,age", [(2, units.WEEK), (3, 10 * units.YEAR)])
    def test_sampling_matches_analytic(self, compensated, level, age):
        rng = np.random.default_rng(9)
        symbols = np.full(300_000, level, dtype=np.int8)
        crossing = compensated.sample_crossing_times(symbols, rng)
        mc = (crossing <= age).mean()
        analytic = compensated.error_probability(level, age)
        sigma = np.sqrt(max(analytic, 1e-12) / symbols.size)
        assert abs(mc - analytic) < 5 * sigma + 3e-5


class TestEngineComposition:
    def test_crossing_distribution_accepts_model(self, compensated):
        distribution = CrossingDistribution(model=compensated)
        plain_distribution = CrossingDistribution(CellSpec())
        age = units.DAY
        assert float(distribution.cdf(age)) < float(plain_distribution.cdf(age)) / 20

    def test_population_runs_on_compensated_distribution(self, compensated):
        from repro.sim.population import LinePopulation

        distribution = CrossingDistribution(model=compensated)
        population = LinePopulation(
            num_lines=512,
            cells_per_line=256,
            distribution=distribution,
            rng=np.random.default_rng(4),
        )
        idx = np.arange(512)
        compensated_errors = population.error_counts(idx, units.WEEK).sum()

        plain_population = LinePopulation(
            num_lines=512,
            cells_per_line=256,
            distribution=CrossingDistribution(CellSpec()),
            rng=np.random.default_rng(4),
        )
        plain_errors = plain_population.error_counts(idx, units.WEEK).sum()
        assert compensated_errors < plain_errors / 10
