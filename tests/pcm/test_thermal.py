"""Thermal profiles: effective-age mapping and its inverse."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.pcm.drift import arrhenius_acceleration
from repro.pcm.thermal import ThermalPhase, ThermalProfile


def diurnal(hot=330.0, cold=300.0) -> ThermalProfile:
    return ThermalProfile(
        [
            ThermalPhase(12 * units.HOUR, hot),
            ThermalPhase(12 * units.HOUR, cold),
        ]
    )


class TestConstruction:
    def test_period_and_mean_acceleration(self):
        profile = diurnal()
        assert profile.period == pytest.approx(units.DAY)
        hot_af = arrhenius_acceleration(330.0, 300.0, 0.2)
        assert profile.mean_acceleration == pytest.approx((hot_af + 1.0) / 2)

    def test_constant_profile_at_reference_is_identity(self):
        profile = ThermalProfile.constant(300.0)
        times = np.array([0.0, 10.0, 1e5, 3e7])
        assert np.allclose(profile.effective_age_at(times), times)
        assert np.allclose(profile.wall_time_at(times), times)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalProfile([])
        with pytest.raises(ValueError):
            ThermalPhase(0.0, 300.0)
        with pytest.raises(ValueError):
            ThermalPhase(10.0, -5.0)


class TestForwardMap:
    def test_hot_phase_accumulates_faster(self):
        profile = diurnal()
        hot_af = arrhenius_acceleration(330.0, 300.0, 0.2)
        # Mid hot phase: 6h wall = 6h * AF effective.
        assert profile.effective_age_at(np.array([6 * units.HOUR]))[0] == (
            pytest.approx(6 * units.HOUR * hot_af)
        )
        # Mid cold phase: 12h*AF + 6h.
        assert profile.effective_age_at(np.array([18 * units.HOUR]))[0] == (
            pytest.approx(12 * units.HOUR * hot_af + 6 * units.HOUR)
        )

    def test_periodicity(self):
        profile = diurnal()
        one_cycle = profile.effective_per_period
        t = np.array([5 * units.HOUR])
        assert profile.effective_age_at(t + 3 * units.DAY)[0] == pytest.approx(
            profile.effective_age_at(t)[0] + 3 * one_cycle
        )

    def test_strictly_increasing(self):
        profile = diurnal()
        times = np.linspace(0, 5 * units.DAY, 500)
        ages = profile.effective_age_at(times)
        assert (np.diff(ages) > 0).all()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            diurnal().effective_age_at(np.array([-1.0]))


class TestInverseMap:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, seed):
        profile = diurnal()
        rng = np.random.default_rng(seed)
        times = rng.uniform(0, 10 * units.DAY, 50)
        ages = profile.effective_age_at(times)
        assert np.allclose(profile.wall_time_at(ages), times, rtol=1e-9)

    def test_infinity_maps_to_infinity(self):
        profile = diurnal()
        out = profile.wall_time_at(np.array([np.inf, 100.0]))
        assert np.isinf(out[0])
        assert np.isfinite(out[1])

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            diurnal().wall_time_at(np.array([-1.0]))


class TestCrossingMapping:
    def test_matches_constant_acceleration(self):
        # A constant 330K profile must reproduce the constant-temperature
        # crossing-time scaling: wall crossing = reference age / AF.
        profile = ThermalProfile.constant(330.0)
        af = arrhenius_acceleration(330.0, 300.0, 0.2)
        ages = np.array([[1e3, 1e5, 1e7]])
        written = np.array([[0.0]])
        crossing = profile.crossing_wall_times(written, ages)
        assert np.allclose(crossing, ages / af)

    def test_write_time_offsets(self):
        profile = diurnal()
        ages = np.array([[units.HOUR]])
        early = profile.crossing_wall_times(np.array([[0.0]]), ages)[0, 0]
        late = profile.crossing_wall_times(np.array([[units.DAY]]), ages)[0, 0]
        assert late == pytest.approx(early + units.DAY)

    def test_hot_write_crosses_sooner_than_cold_write(self):
        profile = diurnal()
        ages = np.array([[2 * units.HOUR]])
        # Written at start of hot phase vs start of cold phase.
        hot_written = profile.crossing_wall_times(np.array([[0.0]]), ages)[0, 0]
        cold_written = profile.crossing_wall_times(
            np.array([[12 * units.HOUR]]), ages
        )[0, 0]
        assert hot_written - 0.0 < cold_written - 12 * units.HOUR


class TestPopulationIntegration:
    def test_diurnal_population_bounded_by_constant_extremes(self):
        from repro.params import CellSpec
        from repro.sim.analytic import CrossingDistribution
        from repro.sim.population import LinePopulation

        reference = CrossingDistribution(CellSpec())

        def error_rate(thermal, temperature):
            distribution = (
                reference
                if thermal is not None or temperature == 300.0
                else CrossingDistribution(CellSpec(), temperature_k=temperature)
            )
            population = LinePopulation(
                num_lines=2048,
                cells_per_line=256,
                distribution=distribution,
                rng=np.random.default_rng(3),
                thermal=thermal,
            )
            idx = np.arange(2048)
            return population.error_counts(idx, 2 * units.DAY).mean()

        cold = error_rate(None, 300.0)
        hot = error_rate(None, 330.0)
        cycled = error_rate(diurnal(), 300.0)
        assert cold < cycled < hot
