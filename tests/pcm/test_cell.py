"""Single-cell model: write/read lifecycle and drift errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.params import CellSpec, DriftParams, replace
from repro.pcm.cell import Cell


def make_cell(seed: int = 0, **kwargs) -> Cell:
    return Cell(rng=np.random.default_rng(seed), **kwargs)


class TestLifecycle:
    def test_unprogrammed_read_raises(self):
        cell = make_cell()
        with pytest.raises(RuntimeError):
            cell.read(0.0)
        with pytest.raises(RuntimeError):
            cell.crossing_time()

    def test_write_then_immediate_read(self):
        cell = make_cell()
        for symbol in range(4):
            cell.write(symbol, now=float(symbol))
            assert cell.read(float(symbol)) == symbol

    def test_write_count_tracks(self):
        cell = make_cell()
        for i in range(5):
            cell.write(1, now=float(i))
        assert cell.write_count == 5

    def test_time_cannot_run_backwards(self):
        cell = make_cell()
        cell.write(1, now=10.0)
        with pytest.raises(ValueError):
            cell.write(2, now=5.0)
        with pytest.raises(ValueError):
            cell.read(5.0)

    def test_invalid_symbol_rejected(self):
        cell = make_cell()
        with pytest.raises(ValueError):
            cell.write(4, 0.0)


class TestDrift:
    def test_fast_cell_eventually_misreads(self):
        # Force a high-drift spec so the error is guaranteed and quick.
        spec = CellSpec()
        fast = replace(
            spec,
            drift=(
                spec.drift[0],
                spec.drift[1],
                DriftParams(nu_mean=0.3, nu_sigma=0.0),
                spec.drift[3],
            ),
        )
        cell = make_cell(spec=fast)
        cell.write(2, now=0.0)
        t_cross = cell.crossing_time()
        assert np.isfinite(t_cross)
        assert not cell.has_drift_error(t_cross * 0.99)
        assert cell.has_drift_error(t_cross * 1.01)
        assert cell.read(t_cross * 1.01) == 3

    def test_rewrite_resets_drift_clock(self):
        spec = CellSpec()
        fast = replace(
            spec,
            drift=tuple(
                DriftParams(0.3, 0.0) if i == 2 else d
                for i, d in enumerate(spec.drift)
            ),
        )
        cell = make_cell(spec=fast)
        cell.write(2, now=0.0)
        first_cross = cell.crossing_time()
        cell.write(2, now=first_cross * 0.9)
        assert cell.crossing_time() > first_cross

    def test_resistance_monotone_after_write(self):
        cell = make_cell(seed=3)
        cell.write(2, now=0.0)
        resistances = [cell.resistance_at(t) for t in (0.0, 10.0, 1e4, 1e7)]
        assert resistances == sorted(resistances)

    def test_top_level_immortal(self):
        cell = make_cell()
        cell.write(3, now=0.0)
        assert cell.crossing_time() == float("inf")
        assert not cell.has_drift_error(units.YEAR)
