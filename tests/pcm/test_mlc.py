"""Generalized MLC construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.pcm.drift import DriftModel
from repro.pcm.levels import LevelCoder
from repro.pcm.mlc import make_mlc_spec


class TestConstruction:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_level_counts(self, bits):
        spec = make_mlc_spec(bits)
        assert spec.num_levels == 1 << bits
        assert spec.bits_per_cell == bits

    def test_spec_passes_cellspec_validation(self):
        # CellSpec's __post_init__ checks band nesting and ordering;
        # construction succeeding for all sizes is itself the test.
        for bits in (1, 2, 3, 4):
            make_mlc_spec(bits)

    def test_drift_interpolates_crystalline_to_amorphous(self):
        spec = make_mlc_spec(3, nu_crystalline=0.001, nu_amorphous=0.1)
        means = [d.nu_mean for d in spec.drift]
        assert means[0] == pytest.approx(0.001)
        assert means[-1] == pytest.approx(0.1)
        assert means == sorted(means)

    def test_coder_and_sensing_work_at_8_levels(self):
        spec = make_mlc_spec(3)
        coder = LevelCoder(spec)
        for level, band in enumerate(spec.levels):
            assert coder.sense(band.program_center) == level
        # Gray property holds at any size.
        for symbol in range(7):
            a = coder.symbol_to_pattern(symbol)
            b = coder.symbol_to_pattern(symbol + 1)
            assert (a ^ b).bit_count() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            make_mlc_spec(0)
        with pytest.raises(ValueError):
            make_mlc_spec(5)
        with pytest.raises(ValueError):
            make_mlc_spec(2, window_low=5.0, window_high=4.0)
        with pytest.raises(ValueError):
            make_mlc_spec(2, nu_crystalline=0.2, nu_amorphous=0.1)


class TestDensityReliabilityTradeoff:
    def test_more_bits_much_worse_drift(self):
        # The density cost: at equal window, 3-bit guard bands are ~half
        # the 2-bit ones, so drift errors explode.
        age = units.HOUR
        probabilities = {}
        for bits in (1, 2, 3):
            spec = make_mlc_spec(bits)
            model = DriftModel(spec)
            worst = max(
                model.error_probability(level, age)
                for level in range(spec.num_levels)
            )
            probabilities[bits] = worst
        assert probabilities[1] < 1e-12
        assert probabilities[3] > 10 * probabilities[2] > 0

    def test_slc_is_immortal(self):
        spec = make_mlc_spec(1)
        model = DriftModel(spec)
        rng = np.random.default_rng(0)
        symbols = rng.integers(0, 2, 10_000).astype(np.int8)
        crossing = model.sample_crossing_times(symbols, rng)
        assert (crossing > units.YEAR).all()
