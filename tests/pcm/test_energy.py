"""Energy model: per-operation costs and the ledger."""

from __future__ import annotations

import pytest

from repro.params import EnergySpec, LineSpec
from repro.pcm.energy import LEDGER_CATEGORIES, EnergyLedger, OperationCosts


class TestOperationCosts:
    def test_costs_cover_data_plus_check_bits(self, energy_spec, line_spec):
        costs = OperationCosts.for_line(
            energy_spec, line_spec, ecc_bits=64, ecc_strength=1
        )
        assert costs.read_energy == pytest.approx(
            energy_spec.read_energy_per_bit * (512 + 64)
        )
        assert costs.write_energy == pytest.approx(
            energy_spec.write_energy_per_bit * (512 + 64)
        )

    def test_write_dominates_read(self, energy_spec, line_spec):
        costs = OperationCosts.for_line(energy_spec, line_spec, 64, 1)
        assert costs.write_energy > 5 * costs.read_energy

    def test_decode_scales_superlinearly(self, energy_spec, line_spec):
        t1 = OperationCosts.for_line(energy_spec, line_spec, 10, 1)
        t8 = OperationCosts.for_line(energy_spec, line_spec, 80, 8)
        assert t8.decode_energy > 8 * t1.decode_energy
        assert t8.decode_latency > 8 * t1.decode_latency

    def test_detection_near_free(self, energy_spec, line_spec):
        costs = OperationCosts.for_line(energy_spec, line_spec, 96, 8)
        assert costs.detect_energy < 0.01 * costs.read_energy

    def test_zero_strength_means_free_decode(self, energy_spec, line_spec):
        costs = OperationCosts.for_line(energy_spec, line_spec, 16, 0)
        assert costs.decode_energy == 0.0

    def test_invalid_arguments(self, energy_spec, line_spec):
        with pytest.raises(ValueError):
            OperationCosts.for_line(energy_spec, line_spec, -1, 1)
        with pytest.raises(ValueError):
            OperationCosts.for_line(energy_spec, line_spec, 0, -1)


class TestLedger:
    def test_empty_ledger(self):
        ledger = EnergyLedger()
        assert ledger.total_energy == 0.0
        assert ledger.scrub_energy == 0.0
        assert ledger.scrub_writes == 0

    def test_add_accumulates(self):
        ledger = EnergyLedger()
        ledger.add("scrub_read", 2.0, 3)
        ledger.add("scrub_write", 10.0, 2)
        ledger.add("demand_write", 10.0, 1)
        assert ledger.counts["scrub_read"] == 3
        assert ledger.scrub_energy == pytest.approx(26.0)
        assert ledger.total_energy == pytest.approx(36.0)
        assert ledger.scrub_writes == 2

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            EnergyLedger().add("nonsense", 1.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger().add("scrub_read", 1.0, -1)

    def test_merge_is_conservative(self):
        a = EnergyLedger()
        b = EnergyLedger()
        a.add("scrub_read", 1.0, 5)
        b.add("scrub_read", 1.0, 7)
        b.add("scrub_decode", 3.0, 2)
        a.merge(b)
        assert a.counts["scrub_read"] == 12
        assert a.energy["scrub_decode"] == pytest.approx(6.0)

    def test_reset_clears_everything(self):
        ledger = EnergyLedger()
        for cat in LEDGER_CATEGORIES:
            ledger.add(cat, 1.0, 1)
        ledger.reset()
        assert ledger.total_energy == 0.0
        assert all(count == 0 for count in ledger.counts.values())

    def test_breakdown_is_a_copy(self):
        ledger = EnergyLedger()
        ledger.add("scrub_read", 1.0)
        breakdown = ledger.breakdown()
        breakdown["scrub_read"] = 999.0
        assert ledger.energy["scrub_read"] == pytest.approx(1.0)


class TestSpecValidation:
    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            EnergySpec(read_energy_per_bit=-1.0)

    def test_line_spec_validation(self):
        with pytest.raises(ValueError):
            LineSpec(data_bytes=0)
