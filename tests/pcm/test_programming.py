"""Iterative program-and-verify: convergence, bands, and cost."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pcm.programming import ProgramAndVerify


@pytest.fixture
def programmer(cell_spec) -> ProgramAndVerify:
    return ProgramAndVerify(cell_spec)


class TestConvergence:
    def test_all_cells_land_in_band(self, programmer, cell_spec, rng):
        symbols = rng.integers(0, 4, 5000, dtype=np.int8)
        result = programmer.program(symbols, rng)
        lows = np.array([b.program_low for b in cell_spec.levels])[symbols]
        highs = np.array([b.program_high for b in cell_spec.levels])[symbols]
        assert (result.log_resistance >= lows).all()
        assert (result.log_resistance <= highs).all()

    def test_iterations_at_least_one(self, programmer, rng):
        result = programmer.program(np.zeros(100, dtype=np.int8), rng)
        assert (result.iterations >= 1).all()
        assert result.total_iterations == result.iterations.sum()

    def test_mean_iterations_reasonable(self, programmer, rng):
        # With a 0.2-decade band and 0.3 initial sigma, MLC programming
        # needs several pulses on average - that is the whole point.
        result = programmer.program(rng.integers(0, 4, 5000, dtype=np.int8), rng)
        assert 1.5 < result.mean_iterations < 10.0

    def test_tighter_band_needs_more_pulses(self, cell_spec, rng):
        loose = ProgramAndVerify(cell_spec, initial_sigma=0.05)
        tight = ProgramAndVerify(cell_spec, initial_sigma=0.6)
        symbols = rng.integers(0, 4, 3000, dtype=np.int8)
        r_loose = loose.program(symbols, np.random.default_rng(1))
        r_tight = tight.program(symbols, np.random.default_rng(1))
        assert r_tight.mean_iterations > r_loose.mean_iterations

    def test_forced_cells_still_in_band(self, cell_spec, rng):
        # One iteration max: everything out of band gets clamped + flagged.
        harsh = ProgramAndVerify(cell_spec, max_iterations=1, initial_sigma=0.5)
        symbols = rng.integers(0, 4, 2000, dtype=np.int8)
        result = harsh.program(symbols, rng)
        assert result.forced.any()
        lows = np.array([b.program_low for b in cell_spec.levels])[symbols]
        highs = np.array([b.program_high for b in cell_spec.levels])[symbols]
        assert (result.log_resistance >= lows).all()
        assert (result.log_resistance <= highs).all()


class TestVariationCompensation:
    def test_offsets_are_compensated(self, programmer, cell_spec, rng):
        symbols = np.full(2000, 2, dtype=np.int8)
        offsets = np.full(2000, 0.15)
        result = programmer.program(symbols, rng, resistance_offset=offsets)
        band = cell_spec.levels[2]
        assert (result.log_resistance >= band.program_low).all()
        assert (result.log_resistance <= band.program_high).all()

    def test_offset_shape_mismatch_rejected(self, programmer, rng):
        with pytest.raises(ValueError):
            programmer.program(
                np.zeros(10, dtype=np.int8), rng, resistance_offset=np.zeros(5)
            )


class TestValidation:
    def test_bad_parameters(self, cell_spec):
        with pytest.raises(ValueError):
            ProgramAndVerify(cell_spec, initial_sigma=0)
        with pytest.raises(ValueError):
            ProgramAndVerify(cell_spec, convergence=1.0)
        with pytest.raises(ValueError):
            ProgramAndVerify(cell_spec, max_iterations=0)
