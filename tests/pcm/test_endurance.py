"""Endurance model: lifetimes, wear accounting, and stuck-at semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import EnduranceSpec
from repro.pcm.endurance import EnduranceModel


class TestLifetimes:
    def test_mean_matches_spec(self, rng):
        model = EnduranceModel(EnduranceSpec(mean_writes=1e6, sigma_log10=0.25))
        lifetimes = model.draw_lifetimes(200_000, rng)
        assert lifetimes.mean() == pytest.approx(1e6, rel=0.02)

    def test_deterministic_when_sigma_zero(self, rng):
        model = EnduranceModel(EnduranceSpec(mean_writes=100, sigma_log10=0.0))
        lifetimes = model.draw_lifetimes(100, rng)
        assert np.allclose(lifetimes, 100.0)

    def test_negative_count_rejected(self, rng):
        model = EnduranceModel(EnduranceSpec())
        with pytest.raises(ValueError):
            model.draw_lifetimes(-1, rng)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            EnduranceSpec(mean_writes=0)
        with pytest.raises(ValueError):
            EnduranceSpec(sigma_log10=-1)


class TestWear:
    def test_cells_stick_at_lifetime(self, rng):
        model = EnduranceModel(EnduranceSpec(mean_writes=5, sigma_log10=0.0))
        state = model.new_state(10, rng)
        symbols = np.arange(10, dtype=np.int8) % 4
        for write in range(4):
            newly = model.apply_write(state, symbols)
            assert not newly.any()
        newly = model.apply_write(state, symbols)
        assert newly.all()
        assert state.num_stuck == 10
        assert np.array_equal(state.stuck_symbol, symbols)

    def test_stuck_cells_stop_accumulating_writes(self, rng):
        model = EnduranceModel(EnduranceSpec(mean_writes=2, sigma_log10=0.0))
        state = model.new_state(4, rng)
        symbols = np.zeros(4, dtype=np.int8)
        for __ in range(5):
            model.apply_write(state, symbols)
        assert (state.writes == 2).all()

    def test_masked_writes_only_wear_selected(self, rng):
        model = EnduranceModel(EnduranceSpec())
        state = model.new_state(6, rng)
        mask = np.array([True, True, False, False, True, False])
        model.apply_write(state, np.zeros(6, dtype=np.int8), mask)
        assert np.array_equal(state.writes > 0, mask)

    def test_hard_error_mask(self, rng):
        model = EnduranceModel(EnduranceSpec(mean_writes=1, sigma_log10=0.0))
        state = model.new_state(4, rng)
        model.apply_write(state, np.array([0, 1, 2, 3], dtype=np.int8))
        desired = np.array([0, 1, 3, 3], dtype=np.int8)
        mask = EnduranceModel.hard_error_mask(state, desired)
        assert mask.tolist() == [False, False, True, False]


class TestClosedForm:
    def test_stuck_fraction_limits(self):
        model = EnduranceModel(EnduranceSpec(mean_writes=1e8, sigma_log10=0.25))
        assert model.expected_stuck_fraction(0) == 0.0
        assert model.expected_stuck_fraction(1) < 1e-6
        assert model.expected_stuck_fraction(1e12) > 0.999

    def test_stuck_fraction_monotone(self):
        model = EnduranceModel(EnduranceSpec())
        writes = [1e5, 1e6, 1e7, 1e8, 1e9]
        fracs = [model.expected_stuck_fraction(w) for w in writes]
        assert fracs == sorted(fracs)

    def test_matches_empirical_cdf(self, rng):
        spec = EnduranceSpec(mean_writes=1e4, sigma_log10=0.3)
        model = EnduranceModel(spec)
        lifetimes = model.draw_lifetimes(100_000, rng)
        for writes in (3e3, 1e4, 3e4):
            empirical = (lifetimes <= writes).mean()
            assert model.expected_stuck_fraction(writes) == pytest.approx(
                empirical, abs=0.01
            )
