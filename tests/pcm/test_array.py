"""Bit-exact line array: writes, reads, drift and hard-error overlay."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.params import CellSpec, DriftParams, EnduranceSpec, replace
from repro.pcm.array import LineArray
from repro.pcm.variation import VariationSpec


def make_array(seed=0, num_lines=4, cells=64, **kwargs) -> LineArray:
    return LineArray(num_lines, cells, rng=np.random.default_rng(seed), **kwargs)


class TestBasics:
    def test_fresh_read_is_clean(self, rng):
        array = make_array()
        symbols = np.tile(np.arange(4, dtype=np.int8), 16)
        array.write_line(0, symbols, now=0.0)
        result = array.read_line(0, now=0.0)
        assert result.num_errors == 0
        assert np.array_equal(result.symbols, symbols)

    def test_read_before_write_raises(self):
        array = make_array()
        with pytest.raises(RuntimeError):
            array.read_line(0, 0.0)

    def test_read_before_write_time_raises(self):
        array = make_array()
        array.write_line(0, np.zeros(64, dtype=np.int8), now=100.0)
        with pytest.raises(ValueError):
            array.read_line(0, 50.0)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            make_array(num_lines=0)
        array = make_array()
        with pytest.raises(IndexError):
            array.read_line(10, 0.0)
        with pytest.raises(ValueError):
            array.write_line(0, np.zeros(10, dtype=np.int8), 0.0)
        with pytest.raises(ValueError):
            array.write_line(0, np.full(64, 9, dtype=np.int8), 0.0)

    def test_write_returns_iterations(self):
        array = make_array()
        iters = array.write_line(0, np.ones(64, dtype=np.int8), 0.0)
        assert iters >= 64  # at least one pulse per cell


class TestDriftErrors:
    def test_errors_accumulate_over_time(self):
        array = make_array(seed=1, num_lines=8, cells=256)
        array.write_random(0.0)
        early = array.total_errors(units.HOUR)
        late = array.total_errors(30 * units.DAY)
        assert early <= late
        assert late > 0  # a month of drift must hurt at default constants

    def test_errors_are_upward_level_shifts(self):
        fast_spec = replace(
            CellSpec(),
            drift=tuple(DriftParams(0.3, 0.1) for __ in range(4)),
        )
        array = make_array(seed=2, num_lines=2, cells=128, spec=fast_spec)
        array.write_random(0.0)
        result = array.read_line(0, 30 * units.DAY)
        drifted = result.drift_errors
        assert (result.symbols[drifted] > result.stored[drifted]).all()

    def test_rewrite_clears_drift(self):
        array = make_array(seed=3, num_lines=2, cells=256)
        array.write_random(0.0)
        later = 60 * units.DAY
        assert array.total_errors(later) > 0
        array.write_random(later)
        assert array.total_errors(later) == 0


class TestHardErrors:
    def test_wearout_produces_stuck_cells(self):
        # Tiny deterministic endurance: every cell dies on the 3rd write.
        endurance = EnduranceSpec(mean_writes=3, sigma_log10=0.0)
        array = make_array(seed=4, num_lines=1, cells=32, endurance=endurance)
        for i in range(3):
            array.write_line(0, np.full(32, 1, dtype=np.int8), float(i))
        assert array.wear is not None
        assert array.wear.num_stuck == 32
        # Stuck in matching data: no visible error yet.
        assert array.read_line(0, 3.0).num_hard_errors == 0
        # New conflicting data cannot be programmed into stuck cells.
        array.write_line(0, np.full(32, 2, dtype=np.int8), 4.0)
        result = array.read_line(0, 4.0)
        assert result.num_hard_errors == 32
        assert (result.symbols == 1).all()

    def test_endurance_none_disables_wear(self):
        array = make_array(endurance=None)
        assert array.wear is None
        for i in range(10):
            array.write_line(0, np.zeros(64, dtype=np.int8), float(i))
        assert array.read_line(0, 10.0).num_hard_errors == 0


class TestVariation:
    def test_zero_variation_allowed(self):
        array = make_array(variation=VariationSpec(0.0, 0.0))
        assert np.allclose(array.variation.resistance_offset, 0.0)
        assert np.allclose(array.variation.drift_factor, 1.0)

    def test_variation_perturbs_drift(self):
        wild = VariationSpec(resistance_offset_sigma=0.0, drift_factor_sigma=0.5)
        array = make_array(seed=5, variation=wild)
        array.write_random(0.0)
        # Per-cell nu should be visibly spread by the factor.
        assert array.nu.std() > 0
