"""BCH codec: roundtrips, correction capability, and failure detection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.bch import BchCode

# A small code for property tests (fast) and the production 512-bit codes.
SMALL = BchCode(32, t=3)
LINE4 = BchCode(512, t=4)
LINE8 = BchCode(512, t=8)


def corrupt(codeword: np.ndarray, positions: list[int]) -> np.ndarray:
    out = codeword.copy()
    for pos in positions:
        out[pos] ^= 1
    return out


class TestConstruction:
    def test_line_code_overheads(self):
        # Shortened BCH over GF(2^10): 10 check bits per corrected error.
        assert LINE4.check_bits == 40
        assert LINE8.check_bits == 80
        assert LINE4.codeword_bits == 552
        assert LINE8.codeword_bits == 592

    def test_field_choice_is_minimal(self):
        assert BchCode(512, 4).field.m == 10
        assert BchCode(32, 3).field.m == 6

    def test_data_too_large_rejected(self):
        with pytest.raises(ValueError):
            BchCode(1200, t=4, m=10)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            BchCode(0, 2)
        with pytest.raises(ValueError):
            BchCode(64, 0)

    @pytest.mark.parametrize("t", [1, 2, 3, 4, 6, 8])
    def test_check_bits_scale_with_t(self, t):
        code = BchCode(512, t)
        assert code.check_bits <= 10 * t
        assert code.check_bits >= 10 * (t - 1) + 1


class TestRoundtrip:
    def test_clean_decode(self, rng):
        data = rng.integers(0, 2, 512, dtype=np.int8)
        codeword = LINE4.encode(data)
        result = LINE4.decode(codeword)
        assert result.ok
        assert result.errors_corrected == 0
        assert np.array_equal(LINE4.extract_data(result.bits), data)

    @pytest.mark.parametrize("num_errors", [1, 2, 3, 4])
    def test_corrects_up_to_t(self, rng, num_errors):
        data = rng.integers(0, 2, 512, dtype=np.int8)
        codeword = LINE4.encode(data)
        positions = rng.choice(LINE4.codeword_bits, num_errors, replace=False)
        result = LINE4.decode(corrupt(codeword, list(positions)))
        assert result.ok
        assert result.errors_corrected == num_errors
        assert np.array_equal(result.bits, codeword)

    def test_eight_errors_with_strong_code(self, rng):
        data = rng.integers(0, 2, 512, dtype=np.int8)
        codeword = LINE8.encode(data)
        positions = rng.choice(LINE8.codeword_bits, 8, replace=False)
        result = LINE8.decode(corrupt(codeword, list(positions)))
        assert result.ok
        assert np.array_equal(result.bits, codeword)

    def test_errors_in_parity_bits_corrected(self, rng):
        data = rng.integers(0, 2, 512, dtype=np.int8)
        codeword = LINE4.encode(data)
        # All errors in the parity region.
        positions = [512, 520, 551]
        result = LINE4.decode(corrupt(codeword, positions))
        assert result.ok
        assert np.array_equal(result.bits, codeword)

    def test_beyond_t_is_flagged_not_silently_wrong(self, rng):
        # t+1 random errors must never be reported as a clean decode of
        # the *original* data; they either fail (ok=False) or miscorrect to
        # a different codeword - for BCH with d=2t+1, t+1 errors land at
        # Hamming distance >= t from every codeword, so decoding to the
        # original is impossible and failures are overwhelmingly detected.
        data = rng.integers(0, 2, 512, dtype=np.int8)
        codeword = LINE4.encode(data)
        flagged = 0
        for __ in range(20):
            positions = rng.choice(LINE4.codeword_bits, 5, replace=False)
            result = LINE4.decode(corrupt(codeword, list(positions)))
            if not result.ok:
                flagged += 1
            else:
                assert not np.array_equal(result.bits, codeword)
        assert flagged >= 15  # detection dominates

    @given(data=st.binary(min_size=4, max_size=4), seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_small_code_property_roundtrip(self, data, seed):
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8)).astype(np.int8)
        codeword = SMALL.encode(bits)
        rng = np.random.default_rng(seed)
        num_errors = int(rng.integers(0, SMALL.t + 1))
        positions = rng.choice(SMALL.codeword_bits, num_errors, replace=False)
        result = SMALL.decode(corrupt(codeword, list(positions)))
        assert result.ok
        assert np.array_equal(result.bits, codeword)


class TestValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            LINE4.encode(np.zeros(100, dtype=np.int8))
        with pytest.raises(ValueError):
            LINE4.decode(np.zeros(100, dtype=np.int8))

    def test_non_binary_rejected(self):
        bad = np.zeros(512, dtype=np.int8)
        bad[0] = 2
        with pytest.raises(ValueError):
            LINE4.encode(bad)

    def test_zero_codeword_is_valid(self):
        result = LINE4.decode(np.zeros(LINE4.codeword_bits, dtype=np.int8))
        assert result.ok
        assert result.errors_corrected == 0

    def test_linearity_sum_of_codewords_is_codeword(self, rng):
        a = rng.integers(0, 2, 512, dtype=np.int8)
        b = rng.integers(0, 2, 512, dtype=np.int8)
        cw_sum = (LINE4.encode(a) ^ LINE4.encode(b)).astype(np.int8)
        result = LINE4.decode(cw_sum)
        assert result.ok
        assert result.errors_corrected == 0
        assert np.array_equal(LINE4.extract_data(cw_sum), a ^ b)
