"""Cross-codec property tests: the laws every ECC implementation must obey.

Each codec already has example-based tests; this module states the
*contracts* once, as hypothesis properties over small (fast) code
instances:

* encode -> decode of a clean codeword recovers the data exactly;
* any error pattern of weight <= t is corrected back to the codeword;
* a pattern of weight t+1 is never passed off as a clean decode of the
  original word (minimum distance 2t+1 makes that impossible: the decoder
  either flags the failure or lands on a *different* codeword);
* the CRC detector catches every single-bit flip (and is clean on the
  original word).

The hypothesis profile is pinned in ``tests/conftest.py`` (derandomized,
no deadline), so these runs are deterministic and CI-safe.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc.bch import BchCode
from repro.ecc.crc import CrcDetector
from repro.ecc.hamming import SecdedCode
from repro.ecc.rs import RsBitCodec

#: Small instances keep each decode sub-millisecond; the laws they obey
#: are the same ones the 512-bit production codes rely on.
SECDED = SecdedCode(32)
BCH = BchCode(32, t=2)
RS = RsBitCodec(32, t=2, m=4)
CRC = CrcDetector(16)


def bits_strategy(length: int):
    return st.lists(
        st.sampled_from([0, 1]), min_size=length, max_size=length
    ).map(lambda raw: np.array(raw, dtype=np.int8))


def positions_strategy(length: int, count: int):
    return st.lists(
        st.integers(0, length - 1),
        min_size=count,
        max_size=count,
        unique=True,
    )


def corrupt(codeword: np.ndarray, positions: list[int]) -> np.ndarray:
    out = codeword.copy()
    for pos in positions:
        out[pos] ^= 1
    return out


class TestRoundTrip:
    @given(data=bits_strategy(SECDED.data_bits))
    def test_secded(self, data):
        result = SECDED.decode(SECDED.encode(data))
        assert result.ok and result.errors_corrected == 0
        assert np.array_equal(SECDED.extract_data(result.bits), data)

    @given(data=bits_strategy(BCH.data_bits))
    def test_bch(self, data):
        result = BCH.decode(BCH.encode(data))
        assert result.ok and result.errors_corrected == 0
        assert np.array_equal(BCH.extract_data(result.bits), data)

    @given(data=bits_strategy(RS.data_bits))
    def test_rs(self, data):
        result = RS.decode(RS.encode(data))
        assert result.ok and result.errors_corrected == 0
        assert np.array_equal(RS.extract_data(result.bits), data)


class TestCorrectsUpToT:
    @given(
        data=bits_strategy(SECDED.data_bits),
        positions=positions_strategy(SECDED.codeword_bits, 1),
    )
    def test_secded_single_error(self, data, positions):
        codeword = SECDED.encode(data)
        result = SECDED.decode(corrupt(codeword, positions))
        assert result.ok and result.errors_corrected == 1
        assert np.array_equal(result.bits, codeword)

    @given(
        data=bits_strategy(BCH.data_bits),
        count=st.integers(1, BCH.t),
        seed=st.integers(0, 2**16),
    )
    def test_bch_up_to_t(self, data, count, seed):
        codeword = BCH.encode(data)
        rng = np.random.default_rng(seed)
        positions = rng.choice(BCH.codeword_bits, count, replace=False)
        result = BCH.decode(corrupt(codeword, list(positions)))
        assert result.ok
        assert np.array_equal(result.bits, codeword)

    @given(
        data=bits_strategy(RS.data_bits),
        count=st.integers(1, RS.code.t),
        seed=st.integers(0, 2**16),
    )
    def test_rs_up_to_t_symbol_errors(self, data, count, seed):
        codeword = RS.encode(data)
        rng = np.random.default_rng(seed)
        # Corrupt `count` distinct symbols (any bit inside each symbol).
        m = RS.code.bits_per_symbol
        symbols = rng.choice(RS.codeword_bits // m, count, replace=False)
        positions = [int(s) * m + int(rng.integers(m)) for s in symbols]
        result = RS.decode(corrupt(codeword, positions))
        assert result.ok
        assert np.array_equal(result.bits, codeword)


class TestBeyondTIsNeverSilentlyOriginal:
    @given(
        data=bits_strategy(SECDED.data_bits),
        seed=st.integers(0, 2**16),
    )
    def test_secded_double_error_detected(self, data, seed):
        codeword = SECDED.encode(data)
        rng = np.random.default_rng(seed)
        positions = rng.choice(SECDED.codeword_bits, 2, replace=False)
        result = SECDED.decode(corrupt(codeword, list(positions)))
        assert not result.ok
        assert result.double_error

    @given(
        data=bits_strategy(BCH.data_bits),
        seed=st.integers(0, 2**16),
    )
    def test_bch_t_plus_one(self, data, seed):
        codeword = BCH.encode(data)
        rng = np.random.default_rng(seed)
        positions = rng.choice(BCH.codeword_bits, BCH.t + 1, replace=False)
        result = BCH.decode(corrupt(codeword, list(positions)))
        assert not result.ok or not np.array_equal(result.bits, codeword)

    @given(
        data=bits_strategy(RS.data_bits),
        seed=st.integers(0, 2**16),
    )
    def test_rs_t_plus_one_symbols(self, data, seed):
        codeword = RS.encode(data)
        rng = np.random.default_rng(seed)
        m = RS.code.bits_per_symbol
        symbols = rng.choice(RS.codeword_bits // m, RS.code.t + 1, replace=False)
        positions = [int(s) * m + int(rng.integers(m)) for s in symbols]
        result = RS.decode(corrupt(codeword, positions))
        assert not result.ok or not np.array_equal(result.bits, codeword)


class TestCrcDetector:
    @given(data=bits_strategy(64))
    def test_clean_word_passes(self, data):
        assert CRC.check(data, CRC.compute(data))

    @given(
        data=bits_strategy(64),
        position=st.integers(0, 63),
    )
    def test_single_bit_flip_detected(self, data, position):
        stored = CRC.compute(data)
        flipped = data.copy()
        flipped[position] ^= 1
        assert not CRC.check(flipped, stored)

    @given(
        data=bits_strategy(64),
        count=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    def test_small_bursts_detected(self, data, count, seed):
        # CRC-16-CCITT's generator has an (x+1) factor (all odd-weight
        # patterns detected) and detects every 2-bit error within its
        # period (32767 bits), so weights 1-3 over 64 bits are guaranteed.
        stored = CRC.compute(data)
        rng = np.random.default_rng(seed)
        positions = rng.choice(64, count, replace=False)
        assert not CRC.check(corrupt(data, list(positions)), stored)
