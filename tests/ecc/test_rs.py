"""Reed-Solomon codec: roundtrips, Forney magnitudes, clustering advantage."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.rs import RsCode

# 512-bit line as 64 8-bit symbols.
LINE = RsCode(data_symbols=64, t=4, m=8)
SMALL = RsCode(data_symbols=8, t=2, m=4)


def corrupt_symbols(codeword, rng, num, field_size):
    out = codeword.copy()
    positions = rng.choice(len(codeword), num, replace=False)
    for pos in positions:
        error = int(rng.integers(1, field_size))
        out[pos] ^= error
    return out


class TestConstruction:
    def test_overheads(self):
        assert LINE.check_symbols == 8
        assert LINE.check_bits == 64
        assert LINE.codeword_symbols == 72

    def test_data_too_long_rejected(self):
        with pytest.raises(ValueError):
            RsCode(data_symbols=300, t=4, m=8)
        with pytest.raises(ValueError):
            RsCode(0, 1)
        with pytest.raises(ValueError):
            RsCode(8, 0)


class TestRoundtrip:
    def test_clean_decode(self, rng):
        data = rng.integers(0, 256, 64)
        codeword = LINE.encode(data)
        result = LINE.decode(codeword)
        assert result.ok and result.errors_corrected == 0
        assert np.array_equal(LINE.extract_data(result.symbols), data)

    @pytest.mark.parametrize("num_errors", [1, 2, 3, 4])
    def test_corrects_up_to_t_symbol_errors(self, rng, num_errors):
        data = rng.integers(0, 256, 64)
        codeword = LINE.encode(data)
        corrupted = corrupt_symbols(codeword, rng, num_errors, 256)
        result = LINE.decode(corrupted)
        assert result.ok
        assert result.errors_corrected == num_errors
        assert np.array_equal(result.symbols, codeword)

    def test_errors_in_check_symbols(self, rng):
        data = rng.integers(0, 256, 64)
        codeword = LINE.encode(data)
        corrupted = codeword.copy()
        corrupted[70] ^= 0x5A
        corrupted[64] ^= 0x01
        result = LINE.decode(corrupted)
        assert result.ok
        assert np.array_equal(result.symbols, codeword)

    def test_beyond_t_flagged(self, rng):
        data = rng.integers(0, 256, 64)
        codeword = LINE.encode(data)
        flagged = 0
        for __ in range(20):
            corrupted = corrupt_symbols(codeword, rng, 5, 256)
            result = LINE.decode(corrupted)
            if not result.ok:
                flagged += 1
            else:
                assert not np.array_equal(result.symbols, codeword)
        assert flagged >= 15

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_small_code_property(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 16, 8)
        codeword = SMALL.encode(data)
        num = int(rng.integers(0, 3))
        corrupted = corrupt_symbols(codeword, rng, num, 16)
        result = SMALL.decode(corrupted)
        assert result.ok
        assert np.array_equal(result.symbols, codeword)


class TestSymbolAdvantage:
    def test_clustered_bit_errors_cost_one_symbol(self, rng):
        # 8 bit-flips inside one symbol = 1 symbol error for RS.
        data = rng.integers(0, 256, 64)
        codeword = LINE.encode(data)
        corrupted = codeword.copy()
        corrupted[10] ^= 0xFF  # every bit of one symbol
        result = LINE.decode(corrupted)
        assert result.ok
        assert result.errors_corrected == 1

    def test_scattered_errors_cost_full_budget(self, rng):
        # 5 flips in 5 distinct symbols exceed t=4.
        data = rng.integers(0, 256, 64)
        codeword = LINE.encode(data)
        corrupted = codeword.copy()
        for pos in (0, 10, 20, 30, 40):
            corrupted[pos] ^= 1
        result = LINE.decode(corrupted)
        assert not result.ok


class TestBitAdapter:
    def test_bit_roundtrip(self, rng):
        bits = rng.integers(0, 2, 64 * 8).astype(np.int8)
        stored = LINE.encode_bits(bits)
        assert stored.shape == (72 * 8,)
        corrupted = stored.copy()
        corrupted[100] ^= 1
        corrupted[101] ^= 1
        decoded, errors, ok = LINE.decode_bits(corrupted)
        assert ok
        assert errors == 1  # both flips are in the same 8-bit symbol
        assert np.array_equal(decoded[: 64 * 8], bits)

    def test_bad_lengths(self):
        with pytest.raises(ValueError):
            LINE.encode_bits(np.zeros(10, dtype=np.int8))
        with pytest.raises(ValueError):
            LINE.decode(np.zeros(10, dtype=np.int64))
        with pytest.raises(ValueError):
            LINE.encode(np.full(64, 300))
