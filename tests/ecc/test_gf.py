"""GF(2^m) field arithmetic: axioms and polynomial helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf import (
    GF2m,
    PRIMITIVE_POLYS,
    poly2_degree,
    poly2_divmod,
    poly2_gcd,
    poly2_lcm,
    poly2_mod,
    poly2_mul,
)

FIELD = GF2m(8)
elements = st.integers(min_value=0, max_value=FIELD.size - 1)
nonzero = st.integers(min_value=1, max_value=FIELD.size - 1)
polys = st.integers(min_value=0, max_value=(1 << 24) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 24) - 1)


class TestFieldConstruction:
    @pytest.mark.parametrize("m", sorted(PRIMITIVE_POLYS))
    def test_exp_log_roundtrip(self, m):
        field = GF2m(m)
        for power in range(0, field.order, max(1, field.order // 97)):
            element = field.exp[power]
            assert field.log[element] == power

    @pytest.mark.parametrize("m", [3, 5, 10])
    def test_alpha_generates_whole_group(self, m):
        field = GF2m(m)
        seen = {field.exp[p] for p in range(field.order)}
        assert len(seen) == field.order
        assert 0 not in seen

    def test_unsupported_m_rejected(self):
        with pytest.raises(ValueError):
            GF2m(1)
        with pytest.raises(ValueError):
            GF2m(20)


class TestFieldAxioms:
    @given(a=elements, b=elements)
    def test_mul_commutes(self, a, b):
        assert FIELD.mul(a, b) == FIELD.mul(b, a)

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=200)
    def test_mul_associates(self, a, b, c):
        assert FIELD.mul(FIELD.mul(a, b), c) == FIELD.mul(a, FIELD.mul(b, c))

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=200)
    def test_mul_distributes_over_xor(self, a, b, c):
        left = FIELD.mul(a, b ^ c)
        right = FIELD.mul(a, b) ^ FIELD.mul(a, c)
        assert left == right

    @given(a=elements)
    def test_one_is_identity(self, a):
        assert FIELD.mul(a, 1) == a

    @given(a=nonzero)
    def test_inverse(self, a):
        assert FIELD.mul(a, FIELD.inv(a)) == 1

    @given(a=nonzero, b=nonzero)
    def test_div_inverts_mul(self, a, b):
        assert FIELD.div(FIELD.mul(a, b), b) == a

    @given(a=elements)
    def test_mul_by_zero(self, a):
        assert FIELD.mul(a, 0) == 0

    def test_zero_division_raises(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            FIELD.inv(0)

    @given(a=nonzero, e=st.integers(min_value=-10, max_value=10))
    def test_pow_matches_repeated_mul(self, a, e):
        expected = 1
        base = a if e >= 0 else FIELD.inv(a)
        for __ in range(abs(e)):
            expected = FIELD.mul(expected, base)
        assert FIELD.pow(a, e) == expected


class TestMinimalPolynomials:
    def test_minimal_poly_annihilates_its_coset(self):
        field = GF2m(6)
        for i in (1, 3, 5, 9):
            mask = field.minimal_polynomial(i)
            coeffs = [(mask >> d) & 1 for d in range(mask.bit_length())]
            for j in field.cyclotomic_coset(i):
                assert field.poly_eval(coeffs, field.alpha_pow(j)) == 0

    def test_coset_closed_under_doubling(self):
        field = GF2m(8)
        coset = field.cyclotomic_coset(3)
        assert sorted((j * 2) % field.order for j in coset) == sorted(coset)

    def test_minimal_poly_degree_equals_coset_size(self):
        field = GF2m(10)
        for i in (1, 5, 33):
            mask = field.minimal_polynomial(i)
            assert poly2_degree(mask) == len(field.cyclotomic_coset(i))


class TestPoly2:
    @given(a=polys, b=polys)
    def test_mul_degree(self, a, b):
        product = poly2_mul(a, b)
        if a == 0 or b == 0:
            assert product == 0
        else:
            assert poly2_degree(product) == poly2_degree(a) + poly2_degree(b)

    @given(a=polys, b=nonzero_polys)
    def test_divmod_reconstructs(self, a, b):
        quotient, remainder = poly2_divmod(a, b)
        assert poly2_mul(quotient, b) ^ remainder == a
        assert remainder == poly2_mod(a, b)
        if remainder:
            assert poly2_degree(remainder) < poly2_degree(b)

    @given(a=nonzero_polys, b=nonzero_polys)
    def test_gcd_divides_both(self, a, b):
        g = poly2_gcd(a, b)
        assert poly2_mod(a, g) == 0
        assert poly2_mod(b, g) == 0

    @given(a=nonzero_polys, b=nonzero_polys)
    def test_lcm_is_common_multiple(self, a, b):
        m = poly2_lcm(a, b)
        assert poly2_mod(m, a) == 0
        assert poly2_mod(m, b) == 0
        # lcm * gcd == a * b over GF(2)[x]
        assert poly2_mul(m, poly2_gcd(a, b)) == poly2_mul(a, b)

    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            poly2_mod(7, 0)
        with pytest.raises(ZeroDivisionError):
            poly2_divmod(7, 0)
