"""ECC scheme registry: overheads, codecs, and detector wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecc.bch import BchCode
from repro.ecc.hamming import InterleavedSecded
from repro.ecc.schemes import (
    SCHEMES,
    EccScheme,
    get_scheme,
    scheme_for_strength,
    secded_scheme,
)


class TestRegistry:
    def test_expected_names_present(self):
        for name in ("secded", "bch1", "bch4", "bch8", "bch8+crc", "secded+crc"):
            assert name in SCHEMES

    def test_get_scheme_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown ECC scheme"):
            get_scheme("reed-solomon")

    def test_secded_line_parameters(self):
        scheme = get_scheme("secded")
        assert scheme.t == 1
        assert scheme.check_bits == 64
        assert not scheme.has_detector

    def test_bch_overheads_ten_bits_per_error(self):
        for t in (1, 2, 3, 4, 6, 8):
            scheme = get_scheme(f"bch{t}")
            assert scheme.check_bits == BchCode(512, t).check_bits

    def test_detector_variants_add_crc_bits(self):
        plain = get_scheme("bch4")
        gated = get_scheme("bch4+crc")
        assert gated.detector_bits == 16
        assert gated.total_overhead_bits == plain.total_overhead_bits + 16
        assert gated.make_detector() is not None
        assert plain.make_detector() is None

    def test_strong_codes_cheaper_than_secded_storage(self):
        # The paper's storage argument: BCH-4 (40 bits) corrects 4x more
        # errors than SECDED (64 bits) in fewer check bits.
        assert get_scheme("bch4").check_bits < get_scheme("secded").check_bits
        assert get_scheme("bch6").check_bits < get_scheme("secded").check_bits

    def test_overhead_fraction(self):
        scheme = get_scheme("bch8+crc")
        assert scheme.overhead_fraction(512) == pytest.approx((80 + 16) / 512)
        with pytest.raises(ValueError):
            scheme.overhead_fraction(0)


class TestCodecs:
    def test_bch_codec_roundtrip_through_scheme(self, rng):
        scheme = scheme_for_strength(2)
        codec = scheme.make_codec(512)
        assert isinstance(codec, BchCode)
        data = rng.integers(0, 2, 512, dtype=np.int8)
        assert codec.decode(codec.encode(data)).ok

    def test_secded_codec_is_interleaved(self):
        codec = secded_scheme().make_codec(512)
        assert isinstance(codec, InterleavedSecded)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            scheme_for_strength(0)
        with pytest.raises(ValueError):
            EccScheme("bad", t=-1, check_bits=0, detector_bits=0, make_codec=None)
