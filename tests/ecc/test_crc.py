"""CRC detectors: guaranteed detections and aliasing statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.crc import CRC_POLYNOMIALS, CrcDetector

CRC16 = CrcDetector(16)


class TestBasics:
    @pytest.mark.parametrize("width", sorted(CRC_POLYNOMIALS))
    def test_roundtrip(self, width, rng):
        detector = CrcDetector(width)
        bits = rng.integers(0, 2, 512, dtype=np.int8)
        assert detector.check(bits, detector.compute(bits))

    def test_check_bits_equals_width(self):
        assert CRC16.check_bits == 16

    def test_bad_polynomial_rejected(self):
        with pytest.raises(ValueError):
            CrcDetector(16, polynomial=0b101)  # degree 2, not 16
        with pytest.raises(ValueError):
            CrcDetector(12)  # no default for width 12

    def test_wrong_crc_length_rejected(self):
        bits = np.zeros(64, dtype=np.int8)
        with pytest.raises(ValueError):
            CRC16.check(bits, np.zeros(8, dtype=np.int8))


class TestDetection:
    def test_detects_every_single_bit_flip(self, rng):
        bits = rng.integers(0, 2, 256, dtype=np.int8)
        crc = CRC16.compute(bits)
        for position in range(256):
            corrupted = bits.copy()
            corrupted[position] ^= 1
            assert not CRC16.check(corrupted, crc), f"missed flip at {position}"

    def test_detects_all_double_flips_sampled(self, rng):
        bits = rng.integers(0, 2, 512, dtype=np.int8)
        crc = CRC16.compute(bits)
        for __ in range(300):
            i, j = rng.choice(512, 2, replace=False)
            corrupted = bits.copy()
            corrupted[i] ^= 1
            corrupted[j] ^= 1
            assert not CRC16.check(corrupted, crc)

    def test_detects_burst_errors_up_to_width(self, rng):
        # CRCs guarantee detection of any burst shorter than the width.
        bits = rng.integers(0, 2, 512, dtype=np.int8)
        crc = CRC16.compute(bits)
        for start in range(0, 512 - 16, 31):
            corrupted = bits.copy()
            burst_len = int(rng.integers(2, 17))
            pattern = rng.integers(0, 2, burst_len, dtype=np.int8)
            pattern[0] = 1
            pattern[-1] = 1
            corrupted[start : start + burst_len] ^= pattern
            assert not CRC16.check(corrupted, crc)

    @given(seed=st.integers(0, 2**16), flips=st.integers(3, 12))
    @settings(max_examples=60, deadline=None)
    def test_random_multibit_patterns_detected(self, seed, flips):
        # Aliasing probability is 2^-16; 60 random patterns should all be
        # caught (failure probability ~1e-3 over the whole suite's lifetime
        # would require ~65 runs, and hypothesis seeds are stable).
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 512, dtype=np.int8)
        crc = CrcDetector(16).compute(bits)
        corrupted = bits.copy()
        for pos in rng.choice(512, flips, replace=False):
            corrupted[pos] ^= 1
        assert not CrcDetector(16).check(corrupted, crc)

    def test_crc8_aliasing_rate_is_near_theory(self, rng):
        # CRC-8 misses ~1/256 of random corruptions; measure it.
        detector = CrcDetector(8)
        bits = rng.integers(0, 2, 128, dtype=np.int8)
        crc = detector.compute(bits)
        misses = 0
        trials = 4096
        for __ in range(trials):
            corrupted = rng.integers(0, 2, 128, dtype=np.int8)
            if np.array_equal(corrupted, bits):
                continue
            if detector.check(corrupted, crc):
                misses += 1
        rate = misses / trials
        assert rate < 4 / 256  # generous: expect ~1/256
