"""SECDED Hamming: single-correct, double-detect, interleaved lines."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.hamming import InterleavedSecded, SecdedCode

CODE = SecdedCode(64)
LINE = InterleavedSecded(512)


class TestSecdedWord:
    def test_72_64_shape(self):
        assert CODE.check_bits == 8
        assert CODE.codeword_bits == 72

    def test_clean_roundtrip(self, rng):
        data = rng.integers(0, 2, 64, dtype=np.int8)
        word = CODE.encode(data)
        result = CODE.decode(word)
        assert result.ok and result.errors_corrected == 0
        assert np.array_equal(CODE.extract_data(word), data)

    @pytest.mark.parametrize("position", [0, 1, 31, 63, 64, 70, 71])
    def test_single_error_any_position(self, rng, position):
        data = rng.integers(0, 2, 64, dtype=np.int8)
        word = CODE.encode(data)
        corrupted = word.copy()
        corrupted[position] ^= 1
        result = CODE.decode(corrupted)
        assert result.ok
        assert result.errors_corrected == 1
        assert np.array_equal(result.bits, word)

    def test_every_single_bit_error_is_corrected(self):
        data = np.zeros(64, dtype=np.int8)
        data[::3] = 1
        word = CODE.encode(data)
        for position in range(CODE.codeword_bits):
            corrupted = word.copy()
            corrupted[position] ^= 1
            result = CODE.decode(corrupted)
            assert result.ok, f"position {position} failed"
            assert np.array_equal(result.bits, word)

    def test_double_errors_all_detected_sample(self, rng):
        data = rng.integers(0, 2, 64, dtype=np.int8)
        word = CODE.encode(data)
        pairs = list(itertools.combinations(range(CODE.codeword_bits), 2))
        for i, j in pairs[:: max(1, len(pairs) // 200)]:
            corrupted = word.copy()
            corrupted[i] ^= 1
            corrupted[j] ^= 1
            result = CODE.decode(corrupted)
            assert not result.ok
            assert result.double_error

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_property_single_correct_double_detect(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, 64, dtype=np.int8)
        word = CODE.encode(data)
        num = int(rng.integers(1, 3))
        positions = rng.choice(CODE.codeword_bits, num, replace=False)
        corrupted = word.copy()
        for pos in positions:
            corrupted[pos] ^= 1
        result = CODE.decode(corrupted)
        if num == 1:
            assert result.ok and np.array_equal(result.bits, word)
        else:
            assert not result.ok and result.double_error

    def test_arbitrary_data_width(self):
        code = SecdedCode(32)
        data = np.ones(32, dtype=np.int8)
        word = code.encode(data)
        word[5] ^= 1
        assert code.decode(word).ok


class TestInterleavedLine:
    def test_line_overhead(self):
        assert LINE.num_words == 8
        assert LINE.check_bits == 64
        assert LINE.codeword_bits == 576

    def test_one_error_per_word_survives(self, rng):
        data = rng.integers(0, 2, 512, dtype=np.int8)
        stored = LINE.encode(data)
        corrupted = stored.copy()
        for word in range(8):
            corrupted[word * 64 + int(rng.integers(0, 64))] ^= 1
        result = LINE.decode(corrupted)
        assert result.ok
        assert result.errors_corrected == 8
        assert np.array_equal(LINE.extract_data(result.bits), data)

    def test_two_errors_same_word_fail(self, rng):
        data = rng.integers(0, 2, 512, dtype=np.int8)
        stored = LINE.encode(data)
        corrupted = stored.copy()
        corrupted[10] ^= 1
        corrupted[20] ^= 1  # same 64-bit word
        result = LINE.decode(corrupted)
        assert not result.ok
        assert result.double_error

    def test_misaligned_data_rejected(self):
        with pytest.raises(ValueError):
            InterleavedSecded(500)
