"""Demand-rate generators: totals, shapes, and edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.generators import (
    DemandRates,
    hotspot_rates,
    idle_rates,
    streaming_rates,
    uniform_rates,
    zipf_rates,
)


class TestDemandRates:
    def test_totals(self):
        rates = uniform_rates(100, total_write_rate=50.0, read_write_ratio=2.0)
        assert rates.total_write_rate == pytest.approx(50.0)
        assert rates.total_read_rate == pytest.approx(100.0)
        assert rates.num_lines == 100

    def test_scaled(self):
        rates = uniform_rates(10, 5.0).scaled(2.0)
        assert rates.total_write_rate == pytest.approx(10.0)
        with pytest.raises(ValueError):
            rates.scaled(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DemandRates(np.array([-1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            DemandRates(np.zeros(3), np.zeros(4))


class TestShapes:
    def test_idle_is_all_zero(self):
        rates = idle_rates(64)
        assert rates.total_write_rate == 0.0
        assert rates.name == "idle"

    def test_uniform_is_flat(self):
        rates = uniform_rates(64, 32.0)
        assert np.allclose(rates.write_rate, 0.5)

    def test_zipf_is_skewed_and_normalized(self):
        rates = zipf_rates(1000, total_write_rate=100.0, alpha=1.2)
        assert rates.total_write_rate == pytest.approx(100.0)
        # Unpermuted: line 0 is the hottest.
        assert rates.write_rate[0] == rates.write_rate.max()
        top_share = rates.write_rate[:10].sum() / 100.0
        assert top_share > 0.3

    def test_zipf_alpha_zero_is_uniform(self):
        rates = zipf_rates(100, 10.0, alpha=0.0)
        assert np.allclose(rates.write_rate, 0.1)

    def test_zipf_permutation_preserves_total(self, rng):
        rates = zipf_rates(500, 42.0, alpha=1.0, rng=rng)
        assert rates.total_write_rate == pytest.approx(42.0)
        assert rates.write_rate[0] != rates.write_rate.max() or True  # permuted

    def test_streaming_period(self):
        rates = streaming_rates(128, sweep_period=60.0)
        assert np.allclose(rates.write_rate, 1 / 60.0)

    def test_hotspot_split(self):
        rates = hotspot_rates(
            1000, total_write_rate=100.0, hot_fraction=0.1, hot_share=0.9
        )
        hot = rates.write_rate[:100].sum()
        cold = rates.write_rate[100:].sum()
        assert hot == pytest.approx(90.0)
        assert cold == pytest.approx(10.0)
        assert rates.write_rate[0] > 50 * rates.write_rate[-1]

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            hotspot_rates(10, 1.0, hot_fraction=0.0)
        with pytest.raises(ValueError):
            hotspot_rates(10, 1.0, hot_share=1.5)

    def test_common_validation(self):
        with pytest.raises(ValueError):
            uniform_rates(0, 1.0)
        with pytest.raises(ValueError):
            uniform_rates(10, -1.0)
        with pytest.raises(ValueError):
            streaming_rates(10, 0.0)
