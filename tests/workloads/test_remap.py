"""Logical-to-physical rate remapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mem.geometry import Interleaving, MemoryGeometry
from repro.workloads.generators import hotspot_rates, remap_rates

GEOMETRY_KW = dict(channels=1, banks_per_channel=4, rows_per_bank=4, lines_per_row=4)


class TestBankMajorMap:
    def test_row_major_is_identity(self):
        geometry = MemoryGeometry(**GEOMETRY_KW)
        mapping = geometry.bank_major_map()
        assert np.array_equal(mapping, np.arange(geometry.num_lines))

    def test_interleaved_is_bijection(self):
        geometry = MemoryGeometry(
            **GEOMETRY_KW, interleaving=Interleaving.LINE_INTERLEAVED
        )
        mapping = geometry.bank_major_map()
        assert sorted(mapping.tolist()) == list(range(geometry.num_lines))
        assert not np.array_equal(mapping, np.arange(geometry.num_lines))

    def test_consecutive_lines_land_in_distinct_banks(self):
        geometry = MemoryGeometry(
            **GEOMETRY_KW, interleaving=Interleaving.LINE_INTERLEAVED
        )
        lines_per_bank = geometry.lines_per_bank
        banks = [
            geometry.bank_major_index(line) // lines_per_bank for line in range(4)
        ]
        assert len(set(banks)) == 4


class TestRemapRates:
    def test_total_rate_preserved(self):
        geometry = MemoryGeometry(
            **GEOMETRY_KW, interleaving=Interleaving.LINE_INTERLEAVED
        )
        logical = hotspot_rates(geometry.num_lines, 100.0, hot_fraction=0.25)
        physical = remap_rates(logical, geometry.bank_major_map())
        assert physical.total_write_rate == pytest.approx(100.0)

    def test_hotspot_scattered_by_interleaving(self):
        geometry = MemoryGeometry(
            **GEOMETRY_KW, interleaving=Interleaving.LINE_INTERLEAVED
        )
        logical = hotspot_rates(
            geometry.num_lines, 100.0, hot_fraction=0.25, hot_share=1.0
        )
        physical = remap_rates(logical, geometry.bank_major_map())
        # Logical: all heat in the first quarter.  Physical: every bank
        # carries an equal share.
        per_bank = physical.write_rate.reshape(4, -1).sum(axis=1)
        assert np.allclose(per_bank, 25.0)

    def test_rate_values_are_permuted_not_changed(self):
        geometry = MemoryGeometry(
            **GEOMETRY_KW, interleaving=Interleaving.LINE_INTERLEAVED
        )
        logical = hotspot_rates(geometry.num_lines, 100.0)
        physical = remap_rates(logical, geometry.bank_major_map())
        assert sorted(physical.write_rate) == pytest.approx(
            sorted(logical.write_rate)
        )

    def test_bad_mapping_rejected(self):
        logical = hotspot_rates(8, 1.0)
        with pytest.raises(ValueError):
            remap_rates(logical, np.zeros(8, dtype=int))  # not a bijection
        with pytest.raises(ValueError):
            remap_rates(logical, np.arange(4))  # wrong length
