"""Access traces: ordering, serialization, and Poisson realization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.generators import uniform_rates, zipf_rates
from repro.workloads.trace import AccessTrace, Op, Request, trace_from_rates


class TestTraceContainer:
    def test_sorts_requests(self):
        trace = AccessTrace(
            [Request(2.0, Op.READ, 1), Request(1.0, Op.WRITE, 0)], num_lines=4
        )
        assert [r.time for r in trace] == [1.0, 2.0]
        assert trace.duration == 2.0
        assert trace.num_writes == 1
        assert trace.num_reads == 1

    def test_line_bounds_enforced(self):
        with pytest.raises(ValueError):
            AccessTrace([Request(0.0, Op.READ, 10)], num_lines=4)
        with pytest.raises(ValueError):
            Request(-1.0, Op.READ, 0)

    def test_negative_line_rejected(self):
        with pytest.raises(ValueError, match="line"):
            Request(0.0, Op.WRITE, -1)

    def test_nonpositive_num_lines_rejected(self):
        for bad in (0, -4):
            with pytest.raises(ValueError, match="num_lines"):
                AccessTrace([], num_lines=bad)

    def test_empty_trace(self):
        trace = AccessTrace([], num_lines=8)
        assert len(trace) == 0
        assert trace.duration == 0.0


class TestSerialization:
    def test_csv_roundtrip(self, rng):
        rates = uniform_rates(32, total_write_rate=100.0)
        trace = trace_from_rates(rates, duration=1.0, rng=rng)
        parsed = AccessTrace.from_csv(trace.to_csv(), num_lines=32)
        assert len(parsed) == len(trace)
        for a, b in zip(trace, parsed):
            assert a == b

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            AccessTrace.from_csv("x,y,z\n", num_lines=4)

    def test_empty_text_rejected(self):
        # No header at all is as malformed as a wrong one.
        with pytest.raises(ValueError, match="unexpected trace header"):
            AccessTrace.from_csv("", num_lines=4)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            AccessTrace.from_csv("time,op,line\n1.0,X,0\n", num_lines=4)

    def test_malformed_time_rejected(self):
        with pytest.raises(ValueError):
            AccessTrace.from_csv("time,op,line\nnoon,W,0\n", num_lines=4)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            AccessTrace.from_csv("time,op,line\n1.0,W,2.5\n", num_lines=4)

    def test_out_of_range_line_rejected(self):
        with pytest.raises(ValueError, match="num_lines"):
            AccessTrace.from_csv("time,op,line\n1.0,W,9\n", num_lines=4)

    def test_blank_rows_skipped(self):
        trace = AccessTrace.from_csv(
            "time,op,line\n1.0,W,0\n\n2.0,R,1\n", num_lines=4
        )
        assert len(trace) == 2


class TestPoissonRealization:
    def test_request_volume_matches_rates(self):
        rng = np.random.default_rng(11)
        rates = uniform_rates(256, total_write_rate=500.0, read_write_ratio=1.0)
        trace = trace_from_rates(rates, duration=4.0, rng=rng)
        # Expect ~2000 writes and ~2000 reads; Poisson noise ~ +-3*45.
        assert trace.num_writes == pytest.approx(2000, abs=150)
        assert trace.num_reads == pytest.approx(2000, abs=150)

    def test_skew_realized(self):
        rng = np.random.default_rng(12)
        rates = zipf_rates(100, total_write_rate=2000.0, alpha=1.5)
        trace = trace_from_rates(rates, duration=1.0, rng=rng)
        writes_to_line0 = sum(
            1 for r in trace if r.line == 0 and r.op is Op.WRITE
        )
        assert writes_to_line0 > 0.3 * trace.num_writes

    def test_times_ordered_and_bounded(self, rng):
        rates = uniform_rates(64, 100.0)
        trace = trace_from_rates(rates, duration=2.0, rng=rng)
        times = [r.time for r in trace]
        assert times == sorted(times)
        assert all(0 <= t <= 2.0 for t in times)

    def test_runaway_trace_guard(self, rng):
        rates = uniform_rates(10, total_write_rate=1e9)
        with pytest.raises(ValueError, match="max_requests"):
            trace_from_rates(rates, duration=10.0, rng=rng)

    def test_invalid_duration(self, rng):
        rates = uniform_rates(10, 1.0)
        with pytest.raises(ValueError):
            trace_from_rates(rates, duration=0.0, rng=rng)
