"""Partial (cell-selective) write-back."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core import partial_scrub, threshold_scrub
from repro.params import CellSpec
from repro.sim import SimulationConfig, run_experiment
from repro.sim.analytic import CrossingDistribution
from repro.sim.population import LinePopulation

CONFIG = SimulationConfig(
    num_lines=2048, region_size=256, horizon=14 * units.DAY, endurance=None
)


@pytest.fixture(scope="module")
def distribution() -> CrossingDistribution:
    return CrossingDistribution(CellSpec())


class TestPartialRewrite:
    def make_population(self, distribution, seed=1):
        return LinePopulation(
            num_lines=64,
            cells_per_line=256,
            distribution=distribution,
            rng=np.random.default_rng(seed),
        )

    def test_clears_exactly_the_drifted_cells(self, distribution):
        population = self.make_population(distribution)
        idx = np.arange(64)
        late = 30 * units.DAY
        before = population.drift_error_counts(idx, late)
        assert before.sum() > 0
        cells = population.partial_rewrite(idx, late)
        assert np.array_equal(cells, before)
        assert population.drift_error_counts(idx, late).sum() == 0

    def test_healthy_cells_keep_their_clocks(self, distribution):
        population = self.make_population(distribution, seed=2)
        idx = np.arange(64)
        mid = 10 * units.DAY
        # Crossing times strictly beyond `mid` must be untouched.
        surviving_before = [
            population.crossing[line][population.crossing[line] > mid].copy()
            for line in range(64)
        ]
        population.partial_rewrite(idx, mid)
        for line in range(64):
            after = set(population.crossing[line].tolist())
            for value in surviving_before[line][: 24 - 4]:
                # Each surviving time either remains stored or was pushed
                # past the keep window by fresh draws (never *advanced*).
                if np.isfinite(value):
                    assert value in after or value >= sorted(after)[-1]

    def test_fractional_wear_accumulates_to_whole_writes(self, distribution):
        population = self.make_population(distribution, seed=3)
        idx = np.arange(64)
        # Force j = cells_per_line by crossing everything: impossible with
        # keep=24, so drive wear with many small partial rewrites instead.
        total_cells = 0
        now = 10 * units.DAY
        for step in range(40):
            cells = population.partial_rewrite(idx, now)
            total_cells += int(cells.sum())
            now += 10 * units.DAY
        expected_whole = total_cells // 256
        assert population.writes.sum() == pytest.approx(expected_whole, abs=64)

    def test_composes_with_thermal_profiles(self, distribution):
        from repro.pcm.thermal import ThermalPhase, ThermalProfile

        profile = ThermalProfile(
            [
                ThermalPhase(12 * units.HOUR, 330.0),
                ThermalPhase(12 * units.HOUR, 300.0),
            ]
        )
        population = LinePopulation(
            num_lines=64,
            cells_per_line=256,
            distribution=distribution,
            rng=np.random.default_rng(8),
            thermal=profile,
        )
        idx = np.arange(64)
        late = 30 * units.DAY
        before = population.drift_error_counts(idx, late)
        cells = population.partial_rewrite(idx, late)
        assert np.array_equal(cells, before)
        assert population.drift_error_counts(idx, late).sum() == 0
        # Fresh draws went through the profile: rows stay sorted (inf
        # entries - replacement cells that never cross - sort to the end).
        rows = population.crossing
        assert (rows[:, :-1] <= rows[:, 1:]).all()

    def test_empty_and_clean_calls_are_noops(self, distribution):
        population = self.make_population(distribution, seed=4)
        assert population.partial_rewrite(np.array([], dtype=int), 0.0).size == 0
        cells = population.partial_rewrite(np.arange(64), 1.0)  # nothing drifted
        assert cells.sum() == 0
        assert (population.writes == 0).all()


class TestPartialPolicy:
    def test_same_protection_less_energy(self):
        full = run_experiment(
            threshold_scrub(units.HOUR, 4, threshold=3), CONFIG
        )
        partial = run_experiment(partial_scrub(units.HOUR, 4, threshold=3), CONFIG)
        # Partial write-back culls fast-drifting cells and keeps the
        # proven-slow survivors, so lines "harden" over time and need
        # *fewer* write-back events as well - a selection effect full
        # rewrites (which redraw every cell) do not get.
        assert partial.scrub_writes < full.scrub_writes
        # ...but write energy collapses to the touched cells.
        full_write_energy = full.stats.energy_breakdown()["write"]
        partial_write_energy = partial.stats.energy_breakdown()["write"]
        assert partial_write_energy < full_write_energy / 20
        # Protection unchanged within noise.
        assert partial.uncorrectable <= 2 * max(full.uncorrectable, 10)
        assert partial.stats.partial_cells > 0

    def test_partial_reduces_wear(self):
        full = run_experiment(
            threshold_scrub(units.HOUR, 4, threshold=3), CONFIG
        )
        partial = run_experiment(partial_scrub(units.HOUR, 4, threshold=3), CONFIG)
        assert partial.mean_writes_per_line < 0.2 * max(
            full.mean_writes_per_line, 0.01
        )
