"""Run results: headline comparisons and export."""

from __future__ import annotations

import json

import pytest

from repro.core.stats import ScrubStats
from repro.params import EnergySpec, LineSpec
from repro.pcm.energy import OperationCosts
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult


def make_result(ue=100, writes=1000, energy_ops=50) -> RunResult:
    costs = OperationCosts.for_line(EnergySpec(), LineSpec(), 64, 1)
    stats = ScrubStats(costs=costs)
    stats.uncorrectable = ue
    stats.record_scrub_writes(writes)
    stats.record_reads(energy_ops)
    return RunResult(
        policy_name="test",
        workload_name="idle",
        config=SimulationConfig(num_lines=1024, region_size=256),
        stats=stats,
        runtime_seconds=0.1,
    )


class TestComparisons:
    def test_ue_reduction(self):
        base = make_result(ue=1000)
        ours = make_result(ue=35)
        assert ours.ue_reduction_vs(base) == pytest.approx(0.965)

    def test_write_factor(self):
        base = make_result(writes=24400)
        ours = make_result(writes=1000)
        assert ours.write_factor_vs(base) == pytest.approx(24.4)

    def test_write_factor_infinite_when_zero(self):
        base = make_result(writes=100)
        ours = make_result(writes=0)
        assert ours.write_factor_vs(base) == float("inf")

    def test_energy_reduction(self):
        base = make_result(writes=1000)
        ours = make_result(writes=100)
        reduction = ours.energy_reduction_vs(base)
        assert 0 < reduction < 1

    def test_zero_baseline_raises(self):
        base = make_result(ue=0)
        with pytest.raises(ZeroDivisionError):
            make_result().ue_reduction_vs(base)


class TestExport:
    def test_to_dict_roundtrips_json(self):
        result = make_result()
        blob = json.loads(result.to_json())
        assert blob["policy"] == "test"
        assert blob["uncorrectable"] == 100.0
        assert "energy_breakdown_j" in blob
        assert blob["num_lines"] == 1024
