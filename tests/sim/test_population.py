"""Population state and engine mechanics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core import basic_scrub, threshold_scrub
from repro.core.stats import ScrubStats
from repro.params import CellSpec, EnduranceSpec, EnergySpec, LineSpec
from repro.pcm.endurance import EnduranceModel
from repro.pcm.energy import OperationCosts
from repro.sim.analytic import CrossingDistribution
from repro.sim.population import LinePopulation, PopulationEngine
from repro.sim.rng import RngStreams
from repro.workloads.generators import uniform_rates


@pytest.fixture(scope="module")
def distribution() -> CrossingDistribution:
    return CrossingDistribution(CellSpec())


def make_population(distribution, num_lines=64, endurance=None, seed=1, keep=24):
    return LinePopulation(
        num_lines=num_lines,
        cells_per_line=256,
        distribution=distribution,
        rng=np.random.default_rng(seed),
        endurance=endurance,
        keep=keep,
    )


def make_stats() -> ScrubStats:
    costs = OperationCosts.for_line(EnergySpec(), LineSpec(), 64, 1)
    return ScrubStats(costs=costs)


class TestLinePopulation:
    def test_fresh_population_clean(self, distribution):
        population = make_population(distribution)
        idx = np.arange(64)
        assert population.error_counts(idx, 0.0).sum() == 0
        assert (population.writes == 0).all()

    def test_errors_accumulate_then_reset_on_rewrite(self, distribution):
        population = make_population(distribution)
        idx = np.arange(64)
        late = 60 * units.DAY
        before = population.error_counts(idx, late).sum()
        assert before > 0
        population.rewrite(idx, np.full(64, late), data_changed=True)
        assert population.error_counts(idx, late).sum() == 0
        assert (population.writes == 1).all()

    def test_error_counts_monotone_in_time(self, distribution):
        population = make_population(distribution)
        idx = np.arange(64)
        counts = [
            population.error_counts(idx, t).sum()
            for t in (units.HOUR, units.DAY, units.WEEK, 30 * units.DAY)
        ]
        assert counts == sorted(counts)

    def test_extra_writes_accumulate_wear(self, distribution):
        population = make_population(distribution)
        idx = np.array([0, 1])
        population.rewrite(
            idx, np.zeros(2), data_changed=True, extra_writes=np.array([4, 9])
        )
        assert population.writes[0] == 5
        assert population.writes[1] == 10

    def test_stuck_cells_appear_with_wear(self, distribution):
        # 10-write deterministic endurance: all 24 tracked cells stick fast.
        endurance = EnduranceModel(EnduranceSpec(mean_writes=10, sigma_log10=0.0))
        population = make_population(distribution, endurance=endurance)
        idx = np.arange(64)
        assert population.stuck_counts(idx).sum() == 0
        for i in range(10):
            population.rewrite(idx, np.full(64, float(i)), data_changed=False)
        assert (population.stuck_counts(idx) == 24).all()

    def test_hard_mismatch_appears_on_data_change(self, distribution):
        endurance = EnduranceModel(EnduranceSpec(mean_writes=2, sigma_log10=0.0))
        population = make_population(distribution, endurance=endurance, seed=3)
        idx = np.arange(64)
        population.rewrite(idx, np.zeros(64), data_changed=False)
        population.rewrite(idx, np.zeros(64), data_changed=False)
        # Cells are now stuck but hold the data written: no mismatch yet.
        assert (population.hard_mismatch[idx] == 0).all()
        population.rewrite(idx, np.zeros(64), data_changed=True)
        # New data: ~3/4 of the 24 stuck cells should conflict.
        mean_mismatch = population.hard_mismatch[idx].mean()
        assert mean_mismatch == pytest.approx(18.0, rel=0.15)

    def test_scrub_writeback_preserves_mismatch(self, distribution):
        endurance = EnduranceModel(EnduranceSpec(mean_writes=1, sigma_log10=0.0))
        population = make_population(distribution, endurance=endurance, seed=4)
        idx = np.arange(64)
        population.rewrite(idx, np.zeros(64), data_changed=False)  # all stick
        population.rewrite(idx, np.zeros(64), data_changed=True)  # mismatch drawn
        mismatch = population.hard_mismatch[idx].copy()
        population.rewrite(idx, np.zeros(64), data_changed=False)  # scrub wb
        assert np.array_equal(population.hard_mismatch[idx], mismatch)

    def test_retire_resets_everything(self, distribution):
        endurance = EnduranceModel(EnduranceSpec(mean_writes=1, sigma_log10=0.0))
        population = make_population(distribution, endurance=endurance, seed=5)
        idx = np.arange(8)
        population.rewrite(idx, np.zeros(8), data_changed=False)
        population.rewrite(idx, np.zeros(8), data_changed=True)
        assert population.stuck_counts(idx).sum() > 0
        population.retire(idx, now=10.0)
        assert population.stuck_counts(idx).sum() == 0
        assert (population.hard_mismatch[idx] == 0).all()
        assert (population.writes[idx] == 0).all()

    def test_retire_without_endurance_still_resets(self, distribution):
        population = make_population(distribution, endurance=None)
        idx = np.array([0])
        late = 60 * units.DAY
        assert population.error_counts(idx, late).sum() >= 0
        population.retire(idx, now=late)
        # Fresh line: drift clock restarts at the retirement instant.
        assert population.error_counts(idx, late).sum() == 0
        assert population.writes[0] == 0

    def test_validation(self, distribution):
        with pytest.raises(ValueError):
            make_population(distribution, num_lines=0)
        with pytest.raises(ValueError):
            LinePopulation(4, 8, distribution, np.random.default_rng(0), keep=9)

    def test_empty_rewrite_noop(self, distribution):
        population = make_population(distribution)
        population.rewrite(np.array([], dtype=int), np.array([]), data_changed=True)
        assert (population.writes == 0).all()


class TestPopulationEngine:
    def test_visit_counts(self, distribution):
        population = make_population(distribution, num_lines=64)
        stats = make_stats()
        engine = PopulationEngine(
            population=population,
            policy=basic_scrub(interval=units.HOUR),
            stats=stats,
            streams=RngStreams(9),
            horizon=units.DAY,
            region_size=32,
        )
        engine.simulate()
        # 2 regions x 24 hourly visits x 32 lines each = 1536 line-visits.
        assert stats.visits == 2 * 24 * 32

    def test_demand_writes_recorded_and_reduce_scrub_work(self, distribution):
        def run(rates):
            population = make_population(distribution, num_lines=64, seed=7)
            stats = make_stats()
            PopulationEngine(
                population=population,
                policy=basic_scrub(interval=units.HOUR),
                stats=stats,
                streams=RngStreams(10),
                horizon=30 * units.DAY,
                region_size=32,
                rates=rates,
            ).simulate()
            return stats

        idle = run(None)
        # Every line rewritten by demand every ~15 minutes on average:
        # drift clocks rarely age a full scrub interval.
        busy = run(uniform_rates(64, total_write_rate=64 / (0.25 * units.HOUR)))
        assert busy.demand_writes > 0
        assert busy.scrub_writes < idle.scrub_writes
        assert busy.uncorrectable <= idle.uncorrectable

    def test_rates_length_checked(self, distribution):
        population = make_population(distribution, num_lines=64)
        with pytest.raises(ValueError):
            PopulationEngine(
                population=population,
                policy=basic_scrub(units.HOUR),
                stats=make_stats(),
                streams=RngStreams(1),
                horizon=units.DAY,
                region_size=32,
                rates=uniform_rates(32, 1.0),
            )

    def test_region_size_must_divide(self, distribution):
        population = make_population(distribution, num_lines=64)
        with pytest.raises(ValueError):
            PopulationEngine(
                population=population,
                policy=basic_scrub(units.HOUR),
                stats=make_stats(),
                streams=RngStreams(1),
                horizon=units.DAY,
                region_size=48,
            )

    def test_retirement_flow(self, distribution):
        endurance = EnduranceModel(EnduranceSpec(mean_writes=20, sigma_log10=0.0))
        population = make_population(distribution, num_lines=64, endurance=endurance)
        stats = make_stats()
        engine = PopulationEngine(
            population=population,
            policy=threshold_scrub(units.HOUR, strength=4, threshold=1),
            stats=stats,
            streams=RngStreams(2),
            horizon=10 * units.DAY,
            region_size=32,
            rates=uniform_rates(64, total_write_rate=64 / units.HOUR),
            retire_hard_limit=4,
        )
        engine.simulate()
        assert stats.retired > 0

    def test_deterministic_given_seed(self, distribution):
        def run(seed):
            population = make_population(distribution, num_lines=64, seed=seed)
            stats = make_stats()
            PopulationEngine(
                population=population,
                policy=basic_scrub(units.HOUR),
                stats=stats,
                streams=RngStreams(seed),
                horizon=3 * units.DAY,
                region_size=32,
            ).simulate()
            return stats.summary()

        assert run(42) == run(42)
        assert run(42) != run(43)
