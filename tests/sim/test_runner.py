"""End-to-end runner: reproducibility and wiring."""

from __future__ import annotations

import pytest

from repro import units
from repro.core import basic_scrub, combined_scrub
from repro.params import CellSpec
from repro.sim import runner
from repro.sim.analytic import tabulation_cache_key
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    DISTRIBUTION_CACHE_COUNTERS,
    build_stats,
    crossing_distribution_for,
    run_experiment,
)
from repro.workloads.generators import uniform_rates

SMALL = SimulationConfig(
    num_lines=512, region_size=128, horizon=2 * units.DAY, endurance=None
)


class TestRunner:
    def test_result_metadata(self):
        result = run_experiment(basic_scrub(units.HOUR), SMALL)
        assert result.policy_name == "basic(secded)"
        assert result.workload_name == "idle"
        assert result.runtime_seconds > 0
        assert result.stats.visits == 512 * 48  # hourly for 2 days

    def test_reproducible_across_calls(self):
        a = run_experiment(basic_scrub(units.HOUR), SMALL)
        b = run_experiment(basic_scrub(units.HOUR), SMALL)
        assert a.stats.summary() == b.stats.summary()

    def test_seed_changes_results(self):
        import dataclasses

        other = dataclasses.replace(SMALL, seed=999)
        a = run_experiment(basic_scrub(units.HOUR), SMALL)
        b = run_experiment(basic_scrub(units.HOUR), other)
        assert a.stats.summary() != b.stats.summary()

    def test_workload_name_propagates(self):
        rates = uniform_rates(512, 10.0)
        result = run_experiment(basic_scrub(units.HOUR), SMALL, rates)
        assert result.workload_name == "uniform"

    def test_default_config(self):
        # Just the construction path; a full default run is benchmark-sized.
        stats = build_stats(combined_scrub(units.HOUR), SimulationConfig())
        assert stats.costs.decode_energy > 0

    def test_distribution_memoized(self):
        a = crossing_distribution_for(SMALL)
        b = crossing_distribution_for(SMALL)
        assert a is b

    def test_stats_priced_by_scheme(self):
        weak = build_stats(basic_scrub(units.HOUR), SMALL)
        strong = build_stats(combined_scrub(units.HOUR), SMALL)
        # bch8+crc carries more bits than secded: costlier reads/writes.
        assert strong.costs.read_energy > weak.costs.read_energy
        assert strong.costs.decode_energy > weak.costs.decode_energy


class TestDistributionCacheEviction:
    """LRU bound, recency refresh, and source counters of the memo."""

    @pytest.fixture(autouse=True)
    def _small_cache(self, monkeypatch):
        runner.clear_distribution_cache()
        monkeypatch.setattr(runner, "_DISTRIBUTION_CACHE_MAX", 2)
        yield
        runner.clear_distribution_cache()

    def test_insert_evicts_oldest_beyond_max(self):
        runner._DISTRIBUTION_CACHE["stale-a"] = object()
        runner._DISTRIBUTION_CACHE["stale-b"] = object()
        dist = runner.cached_crossing_distribution(CellSpec(), 300.0)
        key = tabulation_cache_key(CellSpec(), 300.0, False)
        assert len(runner._DISTRIBUTION_CACHE) == 2
        assert "stale-a" not in runner._DISTRIBUTION_CACHE  # LRU victim
        assert runner._DISTRIBUTION_CACHE[key] is dist

    def test_memory_hit_refreshes_recency(self):
        first = runner.cached_crossing_distribution(CellSpec(), 300.0)
        key = tabulation_cache_key(CellSpec(), 300.0, False)
        # A newer entry would otherwise make the real one the LRU victim.
        runner._DISTRIBUTION_CACHE["filler"] = object()
        hit = runner.cached_crossing_distribution(CellSpec(), 300.0)
        assert hit is first
        assert next(iter(runner._DISTRIBUTION_CACHE)) == "filler"
        assert DISTRIBUTION_CACHE_COUNTERS["memory"] == 1

    def test_counters_track_the_source_chain(self):
        runner.cached_crossing_distribution(CellSpec(), 300.0)
        cold = (
            DISTRIBUTION_CACHE_COUNTERS["disk"]
            + DISTRIBUTION_CACHE_COUNTERS["tabulated"]
        )
        assert cold == 1
        assert DISTRIBUTION_CACHE_COUNTERS["memory"] == 0
        runner.cached_crossing_distribution(CellSpec(), 300.0)
        assert DISTRIBUTION_CACHE_COUNTERS["memory"] == 1

    def test_evicted_entry_reloads_from_disk_not_memory(self):
        runner.cached_crossing_distribution(CellSpec(), 300.0)
        runner._DISTRIBUTION_CACHE["filler-1"] = object()
        runner._DISTRIBUTION_CACHE["filler-2"] = object()
        # Evict the real entry by inserting past the bound via the API.
        runner._DISTRIBUTION_CACHE.popitem(last=False)
        key = tabulation_cache_key(CellSpec(), 300.0, False)
        assert key not in runner._DISTRIBUTION_CACHE
        before = DISTRIBUTION_CACHE_COUNTERS["memory"]
        runner.cached_crossing_distribution(CellSpec(), 300.0)
        # The refetch was not a memory hit: it went back down the chain.
        assert DISTRIBUTION_CACHE_COUNTERS["memory"] == before
        assert DISTRIBUTION_CACHE_COUNTERS["disk"] >= 1

    def test_clear_resets_memo_and_counters(self):
        runner.cached_crossing_distribution(CellSpec(), 300.0)
        runner.clear_distribution_cache()
        assert len(runner._DISTRIBUTION_CACHE) == 0
        assert DISTRIBUTION_CACHE_COUNTERS["memory"] == 0
        assert DISTRIBUTION_CACHE_COUNTERS["disk"] == 0
        assert DISTRIBUTION_CACHE_COUNTERS["tabulated"] == 0
