"""End-to-end runner: reproducibility and wiring."""

from __future__ import annotations

from repro import units
from repro.core import basic_scrub, combined_scrub
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_stats, crossing_distribution_for, run_experiment
from repro.workloads.generators import uniform_rates

SMALL = SimulationConfig(
    num_lines=512, region_size=128, horizon=2 * units.DAY, endurance=None
)


class TestRunner:
    def test_result_metadata(self):
        result = run_experiment(basic_scrub(units.HOUR), SMALL)
        assert result.policy_name == "basic(secded)"
        assert result.workload_name == "idle"
        assert result.runtime_seconds > 0
        assert result.stats.visits == 512 * 48  # hourly for 2 days

    def test_reproducible_across_calls(self):
        a = run_experiment(basic_scrub(units.HOUR), SMALL)
        b = run_experiment(basic_scrub(units.HOUR), SMALL)
        assert a.stats.summary() == b.stats.summary()

    def test_seed_changes_results(self):
        import dataclasses

        other = dataclasses.replace(SMALL, seed=999)
        a = run_experiment(basic_scrub(units.HOUR), SMALL)
        b = run_experiment(basic_scrub(units.HOUR), other)
        assert a.stats.summary() != b.stats.summary()

    def test_workload_name_propagates(self):
        rates = uniform_rates(512, 10.0)
        result = run_experiment(basic_scrub(units.HOUR), SMALL, rates)
        assert result.workload_name == "uniform"

    def test_default_config(self):
        # Just the construction path; a full default run is benchmark-sized.
        stats = build_stats(combined_scrub(units.HOUR), SimulationConfig())
        assert stats.costs.decode_energy > 0

    def test_distribution_memoized(self):
        a = crossing_distribution_for(SMALL)
        b = crossing_distribution_for(SMALL)
        assert a is b

    def test_stats_priced_by_scheme(self):
        weak = build_stats(basic_scrub(units.HOUR), SMALL)
        strong = build_stats(combined_scrub(units.HOUR), SMALL)
        # bch8+crc carries more bits than secded: costlier reads/writes.
        assert strong.costs.read_energy > weak.costs.read_energy
        assert strong.costs.decode_energy > weak.costs.decode_energy
