"""Batched renewal kernel: parity with the scalar solver, memo behavior.

Two layers of evidence that :func:`repro.sim.renewal_batch.finite_horizon_batch`
is a drop-in for per-task :meth:`RenewalModel.finite_horizon` calls:

* a hypothesis law on the recursion itself - random ``(u, w, V)``
  resolution grids through :func:`_recursion_batch` match the scalar
  :func:`finite_horizon_recursion` row by row;
* example pins on real tabulated distributions - mixed intervals,
  strengths and temperatures in one batch reproduce the scalar solver
  within the ``surrogate_batch`` tolerance.

The rest exercises the propagation memo: LRU hits, disk round-trips,
corrupted-entry degradation, within-call dedup, and the ``memo=False``
bypass all leaving the numbers untouched.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.params import CellSpec
from repro.sim import renewal_batch
from repro.sim.analytic import CrossingDistribution
from repro.sim.renewal import RenewalModel, finite_horizon_recursion
from repro.sim.renewal_batch import (
    SURROGATE_MEMO_COUNTERS,
    RenewalTask,
    _propagation_cache_path,
    _recursion_batch,
    clear_propagation_cache,
    finite_horizon_batch,
    propagation_cache_key,
)

#: Module-scope tabulations (~100 ms each); the tests quantify over
#: policy points and batching shapes, not over cell physics.
DISTRIBUTION = CrossingDistribution(CellSpec())
HOT = CrossingDistribution(CellSpec(), temperature_k=330.0)

#: The batch kernel reproduces the scalar float ops up to summation
#: order; the verify law pins 1e-9 and observed gaps sit around 1e-15.
REL_TOL = 1e-9


@pytest.fixture(autouse=True)
def _fresh_propagation_memo():
    """Each test starts with a cold in-process memo and zero counters."""
    clear_propagation_cache()
    yield
    clear_propagation_cache()


def _task(
    distribution=DISTRIBUTION,
    cells_per_line: int = 256,
    interval: float = 2 * units.HOUR,
    t_ecc: int = 3,
    threshold: int = 2,
) -> RenewalTask:
    return RenewalTask(
        distribution=distribution,
        cells_per_line=cells_per_line,
        interval=interval,
        t_ecc=t_ecc,
        threshold=threshold,
    )


# -- the recursion law -----------------------------------------------------------


@st.composite
def resolution_grids(draw):
    """Random ``(R, V)`` resolution stacks with per-visit ``u + w <= 1``."""
    rows = draw(st.integers(min_value=1, max_value=4))
    visits = draw(st.integers(min_value=1, max_value=12))
    unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    u = np.empty((rows, visits))
    w = np.empty((rows, visits))
    for r in range(rows):
        for v in range(visits):
            mass = draw(unit)
            split = draw(unit)
            u[r, v] = mass * split
            w[r, v] = mass * (1.0 - split)
    return u, w


@given(resolution_grids())
def test_recursion_batch_matches_scalar_reference(grids):
    u, w = grids
    n_ue, n_write, no_ue = _recursion_batch(u, w)
    for r in range(u.shape[0]):
        ue_ref, write_ref, q_ref = finite_horizon_recursion(
            list(u[r]), list(w[r]), u.shape[1]
        )
        assert n_ue[r] == pytest.approx(ue_ref, rel=REL_TOL, abs=1e-12)
        assert n_write[r] == pytest.approx(write_ref, rel=REL_TOL, abs=1e-12)
        assert no_ue[r] == pytest.approx(q_ref, rel=REL_TOL, abs=1e-12)
        assert 0.0 <= no_ue[r] <= 1.0


# -- kernel vs scalar solver on real distributions -------------------------------


class TestKernelParity:
    def test_mixed_batch_matches_scalar_solver(self):
        horizon = 3 * units.DAY
        tasks = [
            _task(interval=2 * units.HOUR, t_ecc=3, threshold=2),
            _task(interval=4 * units.HOUR, t_ecc=4, threshold=3),
            _task(distribution=HOT, interval=2 * units.HOUR, t_ecc=3, threshold=2),
            _task(distribution=HOT, interval=6 * units.HOUR, t_ecc=4, threshold=2,
                  cells_per_line=128),
        ]
        batch = finite_horizon_batch(tasks, horizon)
        for task, solution in zip(tasks, batch):
            model = RenewalModel(task.distribution, task.cells_per_line)
            scalar = model.finite_horizon(
                task.interval, task.t_ecc, task.threshold, horizon
            )
            assert solution.visits == scalar.visits
            assert solution.interval == scalar.interval
            assert solution.expected_ue == pytest.approx(
                scalar.expected_ue, rel=REL_TOL
            )
            assert solution.expected_writes == pytest.approx(
                scalar.expected_writes, rel=REL_TOL
            )
            assert solution.no_ue_probability == pytest.approx(
                scalar.no_ue_probability, rel=REL_TOL
            )

    def test_order_preserved_and_chunking_invariant(self):
        horizon = 2 * units.DAY
        tasks = [
            _task(interval=units.HOUR * h, t_ecc=4, threshold=t)
            for h in (1, 2, 3)
            for t in (1, 2, 3)
        ]
        whole = finite_horizon_batch(tasks, horizon)
        split = finite_horizon_batch(tasks[:4], horizon) + finite_horizon_batch(
            tasks[4:], horizon
        )
        assert [s.interval for s in whole] == [t.interval for t in tasks]
        for a, b in zip(whole, split):
            assert a == b  # bit-identical, not approx: same per-row float ops

    def test_zero_visit_tasks_short_circuit(self):
        solution = finite_horizon_batch(
            [_task(interval=10 * units.DAY)], horizon=units.DAY
        )[0]
        assert solution.visits == 0
        assert solution.expected_ue == 0.0
        assert solution.expected_writes == 0.0
        assert solution.no_ue_probability == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            finite_horizon_batch([_task()], horizon=0.0)
        with pytest.raises(ValueError):
            finite_horizon_batch([_task()], horizon=units.DAY, max_visits=0)
        with pytest.raises(ValueError):
            _task(cells_per_line=0)
        with pytest.raises(ValueError):
            _task(interval=-1.0)
        with pytest.raises(ValueError):
            _task(t_ecc=2, threshold=3)

    def test_empty_task_list(self):
        assert finite_horizon_batch([], horizon=units.DAY) == []


# -- the propagation memo --------------------------------------------------------


class TestPropagationMemo:
    def test_duplicate_tasks_share_one_propagation(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        tasks = [_task()] * 5 + [_task(interval=4 * units.HOUR)]
        finite_horizon_batch(tasks, horizon=units.DAY)
        assert SURROGATE_MEMO_COUNTERS["computed"] == 2
        assert SURROGATE_MEMO_COUNTERS["memory"] == 0

    def test_second_call_hits_memory(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        tasks = [_task(), _task(interval=4 * units.HOUR)]
        first = finite_horizon_batch(tasks, horizon=units.DAY)
        assert SURROGATE_MEMO_COUNTERS["computed"] == 2
        second = finite_horizon_batch(tasks, horizon=units.DAY)
        assert SURROGATE_MEMO_COUNTERS["memory"] == 2
        assert SURROGATE_MEMO_COUNTERS["computed"] == 2
        assert first == second

    def test_disk_round_trip(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        task = _task()
        finite_horizon_batch([task], horizon=units.DAY)
        key = propagation_cache_key(
            task, visits=12, tolerance=1e-12
        )
        assert _propagation_cache_path(key, tmp_path).exists()
        # A cold in-process memo now loads from disk instead of computing.
        clear_propagation_cache()
        finite_horizon_batch([task], horizon=units.DAY)
        assert SURROGATE_MEMO_COUNTERS["disk"] == 1
        assert SURROGATE_MEMO_COUNTERS["computed"] == 0

    def test_corrupted_disk_entry_degrades_to_recompute(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        task = _task()
        baseline = finite_horizon_batch([task], horizon=units.DAY)
        key = propagation_cache_key(task, visits=12, tolerance=1e-12)
        _propagation_cache_path(key, tmp_path).write_bytes(b"not an npz")
        clear_propagation_cache()
        again = finite_horizon_batch([task], horizon=units.DAY)
        assert SURROGATE_MEMO_COUNTERS["computed"] == 1
        assert SURROGATE_MEMO_COUNTERS["disk"] == 0
        assert again == baseline

    def test_memo_false_bypasses_both_layers_identically(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        tasks = [_task(), _task(interval=4 * units.HOUR), _task()]
        memoized = finite_horizon_batch(tasks, horizon=units.DAY)
        clear_propagation_cache()
        raw = finite_horizon_batch(tasks, horizon=units.DAY, memo=False)
        assert raw == memoized
        assert SURROGATE_MEMO_COUNTERS["memory"] == 0
        assert SURROGATE_MEMO_COUNTERS["disk"] == 0

    def test_lru_evicts_oldest(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        monkeypatch.setattr(renewal_batch, "_PROPAGATION_CACHE_MAX", 2)
        intervals = [units.HOUR, 2 * units.HOUR, 3 * units.HOUR]
        for interval in intervals:
            finite_horizon_batch([_task(interval=interval)], horizon=units.DAY)
        assert len(renewal_batch._PROPAGATION_CACHE) == 2
        # The first interval's entry was evicted; reusing it recomputes.
        finite_horizon_batch([_task(interval=units.HOUR)], horizon=units.DAY)
        assert SURROGATE_MEMO_COUNTERS["computed"] == 4

    def test_key_separates_every_dimension(self):
        base = _task()
        visits, tolerance = 12, 1e-12
        reference = propagation_cache_key(base, visits, tolerance)
        variants = [
            propagation_cache_key(_task(interval=units.HOUR), visits, tolerance),
            propagation_cache_key(_task(t_ecc=4, threshold=2), visits, tolerance),
            propagation_cache_key(_task(threshold=3, t_ecc=3), visits, tolerance),
            propagation_cache_key(_task(cells_per_line=128), visits, tolerance),
            propagation_cache_key(_task(distribution=HOT), visits, tolerance),
            propagation_cache_key(base, visits + 1, tolerance),
            propagation_cache_key(base, visits, 1e-9),
        ]
        assert reference not in variants
        assert len(set(variants)) == len(variants)
