"""Renewal model: internal consistency and agreement with Monte Carlo."""

from __future__ import annotations

import pytest

from repro import units
from repro.core import threshold_scrub
from repro.params import CellSpec
from repro.sim import SimulationConfig, run_experiment
from repro.sim.analytic import CrossingDistribution
from repro.sim.renewal import RenewalModel


@pytest.fixture(scope="module")
def model() -> RenewalModel:
    return RenewalModel(CrossingDistribution(CellSpec()), cells_per_line=256)


class TestBasics:
    def test_probabilities_are_probabilities(self, model):
        solution = model.solve(units.HOUR, t_ecc=4, threshold=3)
        assert 0 <= solution.ue_probability <= 1
        assert 0 <= solution.error_visit_fraction <= 1
        assert solution.expected_cycle_visits >= 1
        assert solution.ue_rate >= 0
        assert solution.write_rate > 0

    def test_higher_threshold_fewer_writes_more_ue(self, model):
        eager = model.solve(units.HOUR, t_ecc=4, threshold=1)
        lazy = model.solve(units.HOUR, t_ecc=4, threshold=3)
        assert lazy.write_rate < eager.write_rate
        assert lazy.ue_rate >= eager.ue_rate
        assert lazy.expected_cycle_visits > eager.expected_cycle_visits

    def test_stronger_code_fewer_ues(self, model):
        weak = model.solve(units.HOUR, t_ecc=2, threshold=1)
        strong = model.solve(units.HOUR, t_ecc=8, threshold=1)
        assert strong.ue_rate < weak.ue_rate

    def test_longer_interval_fewer_visits_per_second(self, model):
        short = model.solve(0.5 * units.HOUR, t_ecc=4, threshold=3)
        long = model.solve(2 * units.HOUR, t_ecc=4, threshold=3)
        # Cycle *visits* shrink with longer intervals (errors accumulate
        # faster relative to the visit cadence).
        assert long.expected_cycle_visits < short.expected_cycle_visits

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.solve(0.0, 4, 1)
        with pytest.raises(ValueError):
            model.solve(1.0, 4, 5)
        with pytest.raises(ValueError):
            RenewalModel(CrossingDistribution(CellSpec()), 0)


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize("threshold", [1, 2, 3])
    def test_write_rate_matches_engine(self, model, threshold):
        interval = units.HOUR
        config = SimulationConfig(
            num_lines=4096, region_size=512, horizon=14 * units.DAY,
            endurance=None,
        )
        result = run_experiment(
            threshold_scrub(interval, strength=4, threshold=threshold), config
        )
        mc_write_rate = result.scrub_writes / (
            config.num_lines * config.horizon
        )
        solution = model.solve(interval, t_ecc=4, threshold=threshold)
        assert mc_write_rate == pytest.approx(solution.write_rate, rel=0.1)

    def test_ue_rate_matches_engine(self, model):
        # Pick a configuration with measurable UE counts.
        interval = units.HOUR
        config = SimulationConfig(
            num_lines=8192, region_size=1024, horizon=14 * units.DAY,
            endurance=None,
        )
        result = run_experiment(
            threshold_scrub(interval, strength=4, threshold=3), config
        )
        mc_ue_rate = result.uncorrectable / (config.num_lines * config.horizon)
        solution = model.solve(interval, t_ecc=4, threshold=3)
        assert solution.ue_rate > 0
        # Poisson noise on a few hundred events: generous 30% tolerance.
        assert mc_ue_rate == pytest.approx(solution.ue_rate, rel=0.3)

    def test_error_visit_fraction_matches_decode_ratio(self, model):
        interval = units.HOUR
        config = SimulationConfig(
            num_lines=4096, region_size=512, horizon=14 * units.DAY,
            endurance=None,
        )
        result = run_experiment(
            threshold_scrub(interval, strength=4, threshold=3), config
        )
        mc_fraction = result.stats.scrub_decodes / result.stats.visits
        solution = model.solve(interval, t_ecc=4, threshold=3)
        assert mc_fraction == pytest.approx(
            solution.error_visit_fraction, rel=0.1
        )
