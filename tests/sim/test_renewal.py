"""Renewal model: internal consistency and agreement with Monte Carlo."""

from __future__ import annotations

import pytest

from repro import units
from repro.core import threshold_scrub
from repro.params import CellSpec
from repro.sim import SimulationConfig, run_experiment
from repro.sim.analytic import CrossingDistribution
from repro.sim.renewal import RenewalModel


@pytest.fixture(scope="module")
def model() -> RenewalModel:
    return RenewalModel(CrossingDistribution(CellSpec()), cells_per_line=256)


class TestBasics:
    def test_probabilities_are_probabilities(self, model):
        solution = model.solve(units.HOUR, t_ecc=4, threshold=3)
        assert 0 <= solution.ue_probability <= 1
        assert 0 <= solution.error_visit_fraction <= 1
        assert solution.expected_cycle_visits >= 1
        assert solution.ue_rate >= 0
        assert solution.write_rate > 0

    def test_higher_threshold_fewer_writes_more_ue(self, model):
        eager = model.solve(units.HOUR, t_ecc=4, threshold=1)
        lazy = model.solve(units.HOUR, t_ecc=4, threshold=3)
        assert lazy.write_rate < eager.write_rate
        assert lazy.ue_rate >= eager.ue_rate
        assert lazy.expected_cycle_visits > eager.expected_cycle_visits

    def test_stronger_code_fewer_ues(self, model):
        weak = model.solve(units.HOUR, t_ecc=2, threshold=1)
        strong = model.solve(units.HOUR, t_ecc=8, threshold=1)
        assert strong.ue_rate < weak.ue_rate

    def test_longer_interval_fewer_visits_per_second(self, model):
        short = model.solve(0.5 * units.HOUR, t_ecc=4, threshold=3)
        long = model.solve(2 * units.HOUR, t_ecc=4, threshold=3)
        # Cycle *visits* shrink with longer intervals (errors accumulate
        # faster relative to the visit cadence).
        assert long.expected_cycle_visits < short.expected_cycle_visits

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.solve(0.0, 4, 1)
        with pytest.raises(ValueError):
            model.solve(1.0, 4, 5)
        with pytest.raises(ValueError):
            RenewalModel(CrossingDistribution(CellSpec()), 0)


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize("threshold", [1, 2, 3])
    def test_write_rate_matches_engine(self, model, threshold):
        interval = units.HOUR
        config = SimulationConfig(
            num_lines=4096, region_size=512, horizon=14 * units.DAY,
            endurance=None,
        )
        result = run_experiment(
            threshold_scrub(interval, strength=4, threshold=threshold), config
        )
        mc_write_rate = result.scrub_writes / (
            config.num_lines * config.horizon
        )
        solution = model.solve(interval, t_ecc=4, threshold=threshold)
        assert mc_write_rate == pytest.approx(solution.write_rate, rel=0.1)

    def test_ue_rate_matches_engine(self, model):
        # Pick a configuration with measurable UE counts.
        interval = units.HOUR
        config = SimulationConfig(
            num_lines=8192, region_size=1024, horizon=14 * units.DAY,
            endurance=None,
        )
        result = run_experiment(
            threshold_scrub(interval, strength=4, threshold=3), config
        )
        mc_ue_rate = result.uncorrectable / (config.num_lines * config.horizon)
        solution = model.solve(interval, t_ecc=4, threshold=3)
        assert solution.ue_rate > 0
        # Poisson noise on a few hundred events: generous 30% tolerance.
        assert mc_ue_rate == pytest.approx(solution.ue_rate, rel=0.3)

    def test_error_visit_fraction_matches_decode_ratio(self, model):
        interval = units.HOUR
        config = SimulationConfig(
            num_lines=4096, region_size=512, horizon=14 * units.DAY,
            endurance=None,
        )
        result = run_experiment(
            threshold_scrub(interval, strength=4, threshold=3), config
        )
        mc_fraction = result.stats.scrub_decodes / result.stats.visits
        solution = model.solve(interval, t_ecc=4, threshold=3)
        assert mc_fraction == pytest.approx(
            solution.error_visit_fraction, rel=0.1
        )


class TestFiniteHorizon:
    def test_visit_count_includes_boundary_visit(self, model):
        T = units.HOUR
        assert model.finite_horizon(T, 4, 3, 3 * T).visits == 3
        assert model.finite_horizon(T, 4, 3, 2.5 * T).visits == 2
        # Sub-interval horizon: no visit ever happens.
        short = model.finite_horizon(T, 4, 3, 0.5 * T)
        assert short.visits == 0
        assert short.expected_ue == 0.0
        assert short.expected_writes == 0.0
        assert short.no_ue_probability == 1.0

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.finite_horizon(0.0, 4, 3, units.DAY)
        with pytest.raises(ValueError):
            model.finite_horizon(units.HOUR, 4, 3, 0.0)
        with pytest.raises(ValueError):
            model.finite_horizon(units.HOUR, 4, 5, units.DAY)

    def test_long_horizon_recovers_steady_state_rates(self, model):
        T = units.HOUR
        steady = model.solve(T, t_ecc=4, threshold=3)
        fh = model.finite_horizon(T, 4, 3, 120 * units.DAY)
        assert fh.ue_rate == pytest.approx(steady.ue_rate, rel=0.02)
        assert fh.write_rate == pytest.approx(steady.write_rate, rel=0.02)

    def test_transient_shape(self, model):
        # A fresh line needs a visit or two before it can accumulate more
        # than ``threshold`` errors, so the very first visits see *fewer*
        # writes and UEs than rate x horizon; once cycles start resolving
        # the fast-early crossing CDF pushes the UE count *above* the
        # steady-state approximation.  Both deviations are what
        # ``finite_horizon`` corrects.
        T = 2 * units.HOUR
        steady = model.solve(T, t_ecc=3, threshold=2)
        for visits in (1, 2, 3):
            fh = model.finite_horizon(T, 3, 2, visits * T)
            assert fh.expected_writes < steady.write_rate * visits * T
        for visits in (3, 6, 12):
            fh = model.finite_horizon(T, 3, 2, visits * T)
            assert fh.expected_ue > steady.ue_rate * visits * T


class TestFiniteHorizonAgainstMonteCarlo:
    """Short-horizon regression: the corrected expectation is what the
    engine produces, where the steady-state ``rate x horizon``
    approximation is measurably off."""

    def test_short_horizon_ue_counts(self, model):
        interval = 2 * units.HOUR
        horizon = units.DAY
        config = SimulationConfig(
            num_lines=8192, region_size=8192, horizon=horizon,
            endurance=None,
        )
        result = run_experiment(
            threshold_scrub(
                interval, strength=3, threshold=2, with_detector=False
            ),
            config,
        )
        fh = model.finite_horizon(interval, 3, 2, horizon)
        expected = fh.expected_ue * config.num_lines
        # Pure-Poisson band around the exact expectation (the same width
        # verify.equivalence enforces).
        band = 4.0 / expected**0.5
        assert abs(result.uncorrectable - expected) / expected < band

    def test_short_horizon_write_counts_beat_steady_state(self, model):
        interval = 4 * units.HOUR
        horizon = units.DAY
        config = SimulationConfig(
            num_lines=8192, region_size=8192, horizon=horizon,
            endurance=None,
        )
        result = run_experiment(
            threshold_scrub(
                interval, strength=4, threshold=3, with_detector=False
            ),
            config,
        )
        fh = model.finite_horizon(interval, 4, 3, horizon)
        expected = fh.expected_writes * config.num_lines
        band = 4.0 / expected**0.5
        assert abs(result.scrub_writes - expected) / expected < band
        # The uncorrected steady-state estimate misses by more than the
        # band at this horizon - the correction is load-bearing.
        steady = model.solve(interval, t_ecc=4, threshold=3)
        approx = steady.write_rate * horizon * config.num_lines
        assert abs(result.scrub_writes - approx) / approx > band
