"""Batched visit engine: bit-identical to the scalar walk on its domain.

The batch engine's contract (:mod:`repro.sim.batch`) has two regimes:
wherever batching preserves each RNG stream's draw order — idle devices,
single-region devices, scheduler-cohort mode — every stat, joule, and
histogram bucket must match the scalar engine bit for bit; multi-region
demand in round mode reorders the workload stream and is held to a
statistical band instead.  These tests pin both, plus the interactions
(fast-forward, invariants, tracing, process pools) and the supporting
bulk-ledger machinery.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import units
from repro.core import (
    adaptive_scrub,
    basic_scrub,
    combined_scrub,
    light_scrub,
    partial_scrub,
    strong_ecc_scrub,
    threshold_scrub,
)
from repro.core.policy import BatchVisitDecision
from repro.obs.config import ObsConfig
from repro.params import EnduranceSpec
from repro.pcm.energy import EnergyLedger
from repro.sim import (
    BatchPopulationEngine,
    RunSpec,
    SimulationConfig,
    run_experiment,
    run_many,
)
from repro.verify.invariants import VerifyConfig
from repro.workloads.generators import uniform_rates

#: Multi-region device, errors arriving every round: the busy operating
#: point the batch engine exists for (fast-forward can never engage).
MULTI = SimulationConfig(
    num_lines=1024,
    region_size=256,
    horizon=3 * units.DAY,
    endurance=None,
    fast_forward=False,
)
#: Single region: every workload is in the bit-identity domain.
SINGLE = dataclasses.replace(MULTI, region_size=MULTI.num_lines)
#: Compensated sensing: long quiescent stretches, so the round-level
#: fast-forward actually engages.
QUIET = dataclasses.replace(
    MULTI, compensated_sensing=True, fast_forward=True, horizon=5 * units.DAY
)


def busy_rates(num_lines: int = MULTI.num_lines, per_line_per_day: float = 2.0):
    return uniform_rates(
        num_lines, total_write_rate=num_lines * per_line_per_day / units.DAY
    )


def run_engines(policy_factory, config, rates=None):
    """The same experiment on the batch and scalar engines."""
    batch = run_experiment(
        policy_factory(), dataclasses.replace(config, engine="batch"), rates
    )
    scalar = run_experiment(
        policy_factory(), dataclasses.replace(config, engine="scalar"), rates
    )
    return batch, scalar


def assert_identical(batch, scalar):
    assert batch.stats.summary() == scalar.stats.summary()
    assert batch.stats.energy_breakdown() == scalar.stats.energy_breakdown()
    assert (
        batch.stats.error_histogram.tolist()
        == scalar.stats.error_histogram.tolist()
    )
    assert batch.stats.visits_with_errors == scalar.stats.visits_with_errors
    assert batch.stats.partial_cells == scalar.stats.partial_cells
    assert batch.final_state == scalar.final_state


POLICY_MATRIX = {
    "basic": lambda: basic_scrub(2 * units.HOUR),
    "strong": lambda: strong_ecc_scrub(2 * units.HOUR, 4),
    "light": lambda: light_scrub(2 * units.HOUR),
    "threshold": lambda: threshold_scrub(2 * units.HOUR, 3),
    "partial": lambda: partial_scrub(2 * units.HOUR, 3),
}


class TestRoundModeIdentity:
    """Static uniform-interval policies replay the stagger in whole rounds."""

    @pytest.mark.parametrize("name", sorted(POLICY_MATRIX))
    def test_idle_multi_region(self, name):
        batch, scalar = run_engines(POLICY_MATRIX[name], MULTI)
        assert_identical(batch, scalar)

    @pytest.mark.parametrize("name", ["threshold", "light"])
    def test_busy_single_region(self, name):
        batch, scalar = run_engines(
            POLICY_MATRIX[name], SINGLE, busy_rates()
        )
        assert_identical(batch, scalar)

    def test_idle_multi_region_with_retirement_and_spares(self):
        config = dataclasses.replace(
            MULTI,
            endurance=EnduranceSpec(mean_writes=20),
            retire_hard_limit=2,
            spares_per_region=4,
        )
        batch, scalar = run_engines(POLICY_MATRIX["threshold"], config)
        assert_identical(batch, scalar)
        assert batch.stats.retired > 0

    def test_busy_single_region_read_refresh(self):
        config = dataclasses.replace(SINGLE, read_refresh=True)
        rates = uniform_rates(
            SINGLE.num_lines,
            total_write_rate=SINGLE.num_lines * 2.0 / units.DAY,
            read_write_ratio=5.0,
        )
        batch, scalar = run_engines(POLICY_MATRIX["threshold"], config, rates)
        assert_identical(batch, scalar)


class TestCohortModeIdentity:
    """Scheduler-driven policies are identical under any workload: tied
    cohorts batch only when draw-order-neutral (idle), and fall back to
    member-at-a-time processing when they carry demand."""

    def test_adaptive_idle_multi_region(self):
        batch, scalar = run_engines(
            lambda: adaptive_scrub(2 * units.HOUR, 3), MULTI
        )
        assert_identical(batch, scalar)

    def test_adaptive_busy_multi_region(self):
        batch, scalar = run_engines(
            lambda: adaptive_scrub(2 * units.HOUR, 3), MULTI, busy_rates()
        )
        assert_identical(batch, scalar)

    def test_combined_busy_multi_region(self):
        batch, scalar = run_engines(
            lambda: combined_scrub(2 * units.HOUR), MULTI, busy_rates()
        )
        assert_identical(batch, scalar)


class TestRoundModeBand:
    """Multi-region demand in round mode: statistically equivalent only."""

    def test_busy_multi_region_within_band(self):
        batch, scalar = run_engines(
            POLICY_MATRIX["threshold"], MULTI, busy_rates()
        )
        for metric in ("uncorrectable", "scrub_writes", "demand_writes"):
            observed = float(getattr(batch.stats, metric))
            expected = float(getattr(scalar.stats, metric))
            assert expected > 0
            # Generous 4-sigma-ish band on two independent samples of the
            # same process; the verify suite carries the calibrated one.
            rel = max(0.15, 6.0 / np.sqrt(expected))
            assert abs(observed - expected) <= rel * expected

    def test_visit_count_exact_even_off_domain(self):
        # The visit schedule is deterministic either way; only the RNG
        # consumption order differs.
        batch, scalar = run_engines(
            POLICY_MATRIX["threshold"], MULTI, busy_rates()
        )
        assert batch.stats.visits == scalar.stats.visits


class TestFastForwardInterplay:
    def test_round_skip_engages_for_multi_region_detector(self):
        # The scalar fast-forward must stand down for multi-region detector
        # runs (per-region skips cannot reproduce the interleaved detector
        # draws); the batch engine skips whole rounds, whose draw order it
        # already owns — and the results still match the scalar walk.
        batch, scalar = run_engines(POLICY_MATRIX["threshold"], QUIET)
        assert_identical(batch, scalar)
        assert batch.fast_forward["skipped_visits"] > 0
        assert scalar.fast_forward["skipped_visits"] == 0

    def test_round_skip_decode_all(self):
        batch, scalar = run_engines(POLICY_MATRIX["basic"], QUIET)
        assert_identical(batch, scalar)
        assert batch.fast_forward["skipped_visits"] > 0
        # Round skips count whole rounds: multiples of the region count.
        regions = QUIET.num_lines // QUIET.region_size
        assert batch.fast_forward["skipped_visits"] % regions == 0

    def test_no_fast_forward_flag_respected(self):
        config = dataclasses.replace(QUIET, fast_forward=False)
        batch, scalar = run_engines(POLICY_MATRIX["basic"], config)
        assert_identical(batch, scalar)
        assert batch.fast_forward is None


class TestObservability:
    def test_invariants_hold_on_batch_runs(self):
        config = dataclasses.replace(
            MULTI, verify=VerifyConfig(invariants=True), engine="batch"
        )
        result = run_experiment(
            POLICY_MATRIX["threshold"](), config, busy_rates()
        )
        assert result.stats.visits > 0

    def test_invariants_do_not_perturb_results(self):
        verified = run_experiment(
            POLICY_MATRIX["threshold"](),
            dataclasses.replace(
                MULTI, verify=VerifyConfig(invariants=True), engine="batch"
            ),
        )
        plain = run_experiment(
            POLICY_MATRIX["threshold"](),
            dataclasses.replace(MULTI, engine="batch"),
        )
        assert_identical(verified, plain)

    def test_trace_identity_and_engine_mode_header(self):
        obs = ObsConfig(trace=True)
        config = dataclasses.replace(MULTI, obs=obs)
        batch, scalar = run_engines(POLICY_MATRIX["threshold"], config)
        assert batch.trace[0]["event"] == "engine_mode"
        assert batch.trace[0]["engine"] == "batch"
        assert scalar.trace[0]["engine"] == "scalar"

        def body(trace):
            return [e for e in trace if e["event"] != "engine_mode"]

        assert body(batch.trace) == body(scalar.trace)

    def test_timeseries_final_sample_identical(self):
        config = dataclasses.replace(
            MULTI, obs=ObsConfig(sample_every=MULTI.horizon / 4)
        )
        batch, scalar = run_engines(POLICY_MATRIX["basic"], config)
        assert len(batch.timeseries) == len(scalar.timeseries)
        assert batch.timeseries.final == scalar.timeseries.final


class TestParallelInterplay:
    def test_batch_specs_through_run_many(self):
        specs = [
            RunSpec(
                policy="threshold",
                config=dataclasses.replace(MULTI, engine=engine),
                policy_kwargs={"interval": 2 * units.HOUR, "strength": 3},
            )
            for engine in ("batch", "scalar")
        ]
        pooled = run_many(specs, jobs=2)
        serial = run_many(specs, jobs=1)
        for a, b in zip(pooled, serial):
            assert_identical(a, b)
        assert_identical(pooled[0], pooled[1])


class TestConfigAndDecision:
    def test_bogus_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            SimulationConfig(engine="vectorized")

    def test_engine_mode_attribute(self):
        assert BatchPopulationEngine.engine_mode == "batch"

    def test_batch_decision_validation(self):
        ok = dict(
            decoded=np.ones((2, 4), dtype=bool),
            written_back=np.zeros((2, 4), dtype=bool),
            uncorrectable=np.zeros((2, 4), dtype=bool),
            missed=np.zeros((2, 4), dtype=bool),
            next_intervals=np.full(2, 60.0),
        )
        BatchVisitDecision(**ok)
        with pytest.raises(ValueError, match="2-D"):
            BatchVisitDecision(
                **{**ok, "decoded": np.ones(4, dtype=bool),
                   "written_back": np.zeros(4, dtype=bool),
                   "uncorrectable": np.zeros(4, dtype=bool),
                   "missed": np.zeros(4, dtype=bool)}
            )
        with pytest.raises(ValueError, match="next_intervals"):
            BatchVisitDecision(**{**ok, "next_intervals": np.full(3, 60.0)})
        with pytest.raises(ValueError, match="positive"):
            BatchVisitDecision(**{**ok, "next_intervals": np.array([60.0, 0.0])})
        bad = np.zeros((2, 4), dtype=bool)
        bad[0, 0] = True
        with pytest.raises(ValueError, match="both"):
            BatchVisitDecision(
                **{**ok, "written_back": bad, "uncorrectable": bad}
            )


class TestBulkLedger:
    """The bulk stats/energy charges replay scalar additions bit-exactly."""

    def test_add_sequence_matches_iterated_adds(self):
        counts = [3, 0, 17, 1, 250]
        a, b = EnergyLedger(), EnergyLedger()
        for count in counts:
            a.add("scrub_decode", 1.37e-11, count)
        b.add_sequence("scrub_decode", 1.37e-11, counts)
        assert a.energy == b.energy
        assert a.counts == b.counts

    def test_add_sequence_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyLedger().add_sequence("scrub_decode", 1e-12, [1, -2])

    def test_add_sequence_rejects_unknown_category(self):
        with pytest.raises(KeyError):
            EnergyLedger().add_sequence("nope", 1e-12, [1])
