"""EngineSnapshot suite: mid-horizon suspend/resume must be bit-exact.

The contract under test (the service's hard core): an engine suspended
at *any* event boundary, serialized through a file, restored into a
freshly built engine, and run to completion produces byte-identical
results to the uninterrupted run - for both engines, with fast-forward
on and off, idle and under demand.  Plus the compatibility guard: a
snapshot must refuse to restore into the wrong campaign, device,
engine, or format version.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core import adaptive_scrub, basic_scrub
from repro.sim import (
    EngineSnapshot,
    SimulationConfig,
    SnapshotError,
    build_engine,
    finalize_result,
    run_experiment,
)
from repro.sim.snapshot import run_resumable
from repro.workloads import uniform_rates


def _config(engine: str, fast_forward: bool) -> SimulationConfig:
    return SimulationConfig(
        num_lines=128,
        region_size=64,
        horizon=12 * units.HOUR,
        seed=7,
        endurance=None,
        engine=engine,
        fast_forward=fast_forward,
    )


def _fingerprint(result):
    return (
        result.stats.summary(),
        result.final_state,
        dict(result.stats.ledger.energy),
        result.stats.error_histogram.tolist(),
    )


def _run_with_suspension(policy_factory, config, rates, budget, fingerprint):
    """Run to the first suspension at ``budget`` events, round-trip the
    snapshot through a fresh engine, finish, and return the result."""
    engine = build_engine(policy_factory(), config, rates)
    engine.simulate(budget=budget)
    if engine.complete:
        return None  # fewer than `budget` events total; nothing to suspend
    snapshot = EngineSnapshot.capture(engine, fingerprint=fingerprint)

    resumed = build_engine(policy_factory(), config, rates)
    snapshot.apply(resumed, fingerprint=fingerprint)
    resumed.simulate()
    assert resumed.complete
    return finalize_result(resumed, policy_factory(), config, elapsed=0.0)


@pytest.mark.parametrize("engine", ["scalar", "batch"])
@pytest.mark.parametrize("fast_forward", [False, True])
class TestEveryBoundaryIdentity:
    def test_suspend_resume_at_every_boundary(self, engine, fast_forward):
        config = _config(engine, fast_forward)
        policy = lambda: basic_scrub(interval=units.HOUR)  # noqa: E731
        baseline = _fingerprint(run_experiment(policy(), config))

        boundaries = 0
        for budget in range(0, 500):
            result = _run_with_suspension(
                policy, config, None, budget, fingerprint="t/every-boundary"
            )
            if result is None:
                break  # ran to completion: every boundary has been covered
            boundaries += 1
            assert _fingerprint(result) == baseline, f"diverged at event {budget}"
        else:
            pytest.fail("run never completed within 500 events")
        assert boundaries >= 2  # the loop genuinely exercised suspensions

    def test_under_demand_and_adaptive_policy(self, engine, fast_forward):
        config = _config(engine, fast_forward)
        rates = uniform_rates(config.num_lines, total_write_rate=0.05)
        policy = lambda: adaptive_scrub(interval=units.HOUR)  # noqa: E731
        baseline = _fingerprint(run_experiment(policy(), config, rates))
        # A few representative boundaries rather than the full sweep: the
        # adaptive controller state and demand accounting ride in the
        # snapshot, which is what this case pins down.
        for budget in (1, 3, 7):
            result = _run_with_suspension(
                policy, config, rates, budget, fingerprint="t/demand"
            )
            if result is None:
                break
            assert _fingerprint(result) == baseline


class TestSnapshotFile:
    def test_file_round_trip_identity(self, tmp_path):
        config = _config("scalar", True)
        baseline = _fingerprint(run_experiment(basic_scrub(interval=units.HOUR), config))

        engine = build_engine(basic_scrub(interval=units.HOUR), config)
        engine.simulate(budget=5)
        assert not engine.complete
        path = tmp_path / "snap.npz"
        EngineSnapshot.capture(engine, fingerprint="t/file").save(path)

        resumed = build_engine(basic_scrub(interval=units.HOUR), config)
        EngineSnapshot.load(path).apply(resumed, fingerprint="t/file")
        resumed.simulate()
        result = finalize_result(
            resumed, basic_scrub(interval=units.HOUR), config, elapsed=0.0
        )
        assert _fingerprint(result) == baseline

    def test_corrupt_file_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "snap.npz"
        path.write_bytes(b"not an npz")
        with pytest.raises(SnapshotError):
            EngineSnapshot.load(path)

    def test_missing_file_raises_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            EngineSnapshot.load(tmp_path / "absent.npz")


class TestCompatibilityGuard:
    def _suspended(self, config):
        engine = build_engine(basic_scrub(interval=units.HOUR), config)
        engine.simulate(budget=3)
        assert not engine.complete
        return engine

    def test_fingerprint_mismatch_refused(self):
        config = _config("scalar", False)
        snapshot = EngineSnapshot.capture(
            self._suspended(config), fingerprint="campaign-a/device-0"
        )
        fresh = build_engine(basic_scrub(interval=units.HOUR), config)
        with pytest.raises(SnapshotError, match="refusing to resume"):
            snapshot.apply(fresh, fingerprint="campaign-b/device-0")

    def test_engine_mode_mismatch_refused(self):
        scalar = _config("scalar", False)
        batch = _config("batch", False)
        snapshot = EngineSnapshot.capture(
            self._suspended(scalar), fingerprint="t/mode"
        )
        fresh = build_engine(basic_scrub(interval=units.HOUR), batch)
        with pytest.raises(SnapshotError, match="engine"):
            snapshot.apply(fresh, fingerprint="t/mode")

    def test_version_mismatch_refused(self):
        config = _config("scalar", False)
        snapshot = EngineSnapshot.capture(
            self._suspended(config), fingerprint="t/version"
        )
        snapshot.meta["version"] = 999
        fresh = build_engine(basic_scrub(interval=units.HOUR), config)
        with pytest.raises(SnapshotError, match="version"):
            snapshot.apply(fresh, fingerprint="t/version")

    def test_started_engine_refused_as_target(self):
        config = _config("scalar", False)
        snapshot = EngineSnapshot.capture(
            self._suspended(config), fingerprint="t/started"
        )
        target = self._suspended(config)
        with pytest.raises(SnapshotError):
            snapshot.apply(target, fingerprint="t/started")

    def test_completed_engine_refused_as_source(self):
        config = _config("scalar", False)
        engine = build_engine(basic_scrub(interval=units.HOUR), config)
        engine.simulate()
        assert engine.complete
        with pytest.raises(SnapshotError):
            EngineSnapshot.capture(engine, fingerprint="t/complete")


class TestRunResumable:
    def test_checkpointed_run_matches_straight_run(self, tmp_path):
        config = _config("scalar", True)
        baseline = _fingerprint(run_experiment(basic_scrub(interval=units.HOUR), config))
        checkpoints = []
        result = run_resumable(
            basic_scrub(interval=units.HOUR),
            config,
            snapshot_path=tmp_path / "snap.npz",
            fingerprint="t/resumable",
            snapshot_budget=4,
            on_checkpoint=lambda: checkpoints.append(1),
        )
        assert _fingerprint(result) == baseline
        assert len(checkpoints) >= 1

    def test_resume_from_existing_snapshot(self, tmp_path):
        config = _config("batch", False)
        baseline = _fingerprint(run_experiment(basic_scrub(interval=units.HOUR), config))
        path = tmp_path / "snap.npz"

        # First invocation: stop after one checkpoint (simulated kill).
        class _Stop(Exception):
            pass

        def _bail():
            raise _Stop

        with pytest.raises(_Stop):
            run_resumable(
                basic_scrub(interval=units.HOUR),
                config,
                snapshot_path=path,
                fingerprint="t/kill",
                snapshot_budget=3,
                on_checkpoint=_bail,
            )
        assert path.exists()

        # Second invocation resumes mid-horizon and must finish identically.
        result = run_resumable(
            basic_scrub(interval=units.HOUR),
            config,
            snapshot_path=path,
            fingerprint="t/kill",
            snapshot_budget=3,
        )
        assert _fingerprint(result) == baseline
