"""Determinism and cache suite for the parallel execution layer.

The contract under test: ``run_many`` is bit-identical to serial execution
for any ``jobs`` (randomness derives from each spec's config seed, never
worker identity), and the persistent tabulation cache round-trips exactly
while degrading gracefully on corrupted or stale entries.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import units
from repro.core import basic_scrub
from repro.params import CellSpec
from repro.sim import RunSpec, SimulationConfig, run_experiment, run_many
from repro.sim.analytic import (
    CrossingDistribution,
    load_tabulation,
    save_tabulation,
    tabulation_cache_key,
    tabulation_cache_path,
)
from repro.sim.parallel import parallel_map
from repro.sim.runner import (
    DISTRIBUTION_CACHE_COUNTERS,
    cached_crossing_distribution,
    clear_distribution_cache,
    crossing_distribution_for,
)
from repro.analysis.sweeps import sweep_intervals

SMALL = SimulationConfig(
    num_lines=256, region_size=64, horizon=2 * units.DAY, endurance=None
)
INTERVALS = [0.5 * units.HOUR, units.HOUR, 2 * units.HOUR, 4 * units.HOUR]


def _specs() -> list[RunSpec]:
    return [
        RunSpec("basic", SMALL, {"interval": interval}) for interval in INTERVALS
    ]


def _fingerprint(result):
    return (
        result.uncorrectable,
        result.scrub_writes,
        result.scrub_energy,
        result.stats.visits,
        tuple(sorted(result.final_state.items())),
    )


class TestRunManyDeterminism:
    def test_jobs4_bit_identical_to_serial(self):
        specs = _specs()
        sequential = [spec.run() for spec in specs]
        serial = run_many(specs, jobs=1)
        parallel = run_many(specs, jobs=4)
        for seq, one, four in zip(sequential, serial, parallel):
            assert _fingerprint(seq) == _fingerprint(one) == _fingerprint(four)

    def test_matches_plain_run_experiment(self):
        spec = _specs()[0]
        direct = run_experiment(basic_scrub(INTERVALS[0]), SMALL)
        (via_many,) = run_many([spec], jobs=4)
        assert _fingerprint(direct) == _fingerprint(via_many)

    def test_order_preserved(self):
        results = run_many(_specs(), jobs=2)
        # Shorter intervals scrub more often: visits strictly ordered.
        visits = [result.stats.visits for result in results]
        assert visits == sorted(visits, reverse=True)

    def test_empty_and_single(self):
        assert run_many([], jobs=4) == []
        (only,) = run_many(_specs()[:1], jobs=4)
        assert only.policy_name == "basic(secded)"

    def test_specs_pickle(self):
        for spec in _specs():
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy factory"):
            RunSpec("nonsense", SMALL, {"interval": units.HOUR})

    def test_worker_failure_surfaces_spec(self):
        bad = RunSpec("basic", SMALL, {"interval": units.HOUR, "bogus": 1})
        with pytest.raises(RuntimeError, match="bogus"):
            run_many([_specs()[0], bad], jobs=2)


class TestSweepParity:
    def test_named_factory_matches_callable(self):
        by_name = sweep_intervals("basic", INTERVALS[:2], SMALL, jobs=2)
        by_callable = sweep_intervals(basic_scrub, INTERVALS[:2], SMALL, jobs=1)
        for a, b in zip(by_name, by_callable):
            assert _fingerprint(a) == _fingerprint(b)


class TestParallelMap:
    def test_inline_fallback_and_order(self):
        assert parallel_map(abs, [-3, 1, -2], jobs=1) == [3, 1, 2]

    def test_pool_preserves_order(self):
        assert parallel_map(abs, [-3, 1, -2, -9], jobs=2) == [3, 1, 2, 9]


class TestDiskCache:
    def test_round_trip_exact(self, _isolated_disk_cache):
        fresh = crossing_distribution_for(SMALL)
        clear_distribution_cache()
        reloaded = crossing_distribution_for(SMALL)
        assert DISTRIBUTION_CACHE_COUNTERS["disk"] == 1
        assert np.array_equal(fresh.grid, reloaded.grid)
        assert np.array_equal(fresh.per_level_cdf, reloaded.per_level_cdf)
        assert np.array_equal(fresh.cdf_values, reloaded.cdf_values)
        times = np.logspace(-1, 11, 64)
        assert np.array_equal(fresh.cdf(times), reloaded.cdf(times))
        u = np.linspace(0.0, 1.0, 129)
        assert np.array_equal(fresh.quantile(u), reloaded.quantile(u))

    def test_corrupted_file_ignored(self, _isolated_disk_cache):
        spec = CellSpec()
        key = tabulation_cache_key(spec, 300.0)
        path = tabulation_cache_path(key, _isolated_disk_cache)
        path.write_bytes(b"not an npz archive")
        assert load_tabulation(key, spec.num_levels, 768, _isolated_disk_cache) is None
        # The full chain re-tabulates instead of failing.
        cached_crossing_distribution(spec, 300.0)
        assert DISTRIBUTION_CACHE_COUNTERS["tabulated"] == 1

    def test_stale_key_ignored(self, _isolated_disk_cache):
        spec = CellSpec()
        distribution = CrossingDistribution(spec, temperature_k=300.0)
        key = tabulation_cache_key(spec, 300.0)
        other = tabulation_cache_key(spec, 310.0)
        # A file whose embedded key disagrees with its name (stale format
        # or collision) must be treated as a miss.
        saved = save_tabulation(distribution, key, _isolated_disk_cache)
        assert saved is not None
        saved.rename(tabulation_cache_path(other, _isolated_disk_cache))
        assert load_tabulation(other, spec.num_levels, 768, _isolated_disk_cache) is None

    def test_shape_mismatch_ignored(self, _isolated_disk_cache):
        spec = CellSpec()
        distribution = CrossingDistribution(spec, temperature_k=300.0)
        key = tabulation_cache_key(spec, 300.0)
        save_tabulation(distribution, key, _isolated_disk_cache)
        assert load_tabulation(key, spec.num_levels, 512, _isolated_disk_cache) is None

    def test_concurrent_writers_race(self, tmp_path):
        # Regression for the shared-cache race: many writers publishing the
        # same key while readers poll must never surface a partial entry -
        # every read is either a clean miss or the complete, bit-exact
        # tabulation - and the temp-file + os.replace protocol must leave
        # no litter behind.
        import threading

        spec = CellSpec()
        distribution = CrossingDistribution(spec, temperature_k=300.0)
        key = tabulation_cache_key(spec, 300.0)
        start = threading.Barrier(6)
        errors: list[BaseException] = []

        def writer():
            try:
                start.wait()
                for _ in range(5):
                    assert (
                        save_tabulation(distribution, key, tmp_path) is not None
                    )
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        def reader():
            try:
                start.wait()
                for _ in range(25):
                    loaded = load_tabulation(
                        key, spec.num_levels, 768, tmp_path
                    )
                    if loaded is not None:
                        grid, cdf = loaded
                        assert np.array_equal(grid, distribution.grid)
                        assert np.array_equal(cdf, distribution.per_level_cdf)
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        final = load_tabulation(key, spec.num_levels, 768, tmp_path)
        assert final is not None
        assert [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        crossing_distribution_for(SMALL)
        clear_distribution_cache()
        crossing_distribution_for(SMALL)
        assert DISTRIBUTION_CACHE_COUNTERS["disk"] == 0
        assert DISTRIBUTION_CACHE_COUNTERS["tabulated"] == 1


class TestMemoryCache:
    def test_lru_bounded(self, monkeypatch):
        import repro.sim.runner as runner

        monkeypatch.setattr(runner, "_DISTRIBUTION_CACHE_MAX", 2)
        spec = CellSpec()
        for temperature in (300.0, 305.0, 310.0):
            cached_crossing_distribution(spec, temperature)
        assert len(runner._DISTRIBUTION_CACHE) == 2

    def test_memory_hit_counted(self):
        first = crossing_distribution_for(SMALL)
        second = crossing_distribution_for(SMALL)
        assert first is second
        assert DISTRIBUTION_CACHE_COUNTERS["memory"] == 1

    def test_clear_resets(self):
        crossing_distribution_for(SMALL)
        clear_distribution_cache()
        assert DISTRIBUTION_CACHE_COUNTERS == {
            "memory": 0,
            "disk": 0,
            "tabulated": 0,
        }


class TestSparesPlumbing:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="spares_per_region"):
            SimulationConfig(num_lines=256, region_size=64, spares_per_region=-1)

    def test_final_state_reports_pool(self):
        config = SimulationConfig(
            num_lines=256,
            region_size=64,
            horizon=units.DAY,
            retire_hard_limit=2,
            spares_per_region=2,
        )
        result = run_experiment(basic_scrub(units.HOUR), config)
        assert "spares_used" in result.final_state
        assert "spare_refusals" in result.final_state
        assert "spare_exhausted_regions" in result.final_state

    def test_no_pool_when_unset(self):
        result = run_experiment(basic_scrub(units.HOUR), SMALL)
        assert "spares_used" not in result.final_state
