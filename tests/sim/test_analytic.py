"""Analytic models: crossing distribution, binomial tails, UE math."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.params import CellSpec
from repro.pcm.drift import DriftModel
from repro.sim.analytic import (
    AnalyticModel,
    CrossingDistribution,
    _binomial_pmf,
    _binomial_tail,
)


@pytest.fixture(scope="module")
def distribution() -> CrossingDistribution:
    return CrossingDistribution(CellSpec())


@pytest.fixture(scope="module")
def model(distribution) -> AnalyticModel:
    return AnalyticModel(distribution, cells_per_line=256)


class TestCrossingDistribution:
    def test_cdf_monotone(self, distribution):
        times = np.logspace(0, 9, 40)
        values = distribution.cdf(times)
        assert (np.diff(values) >= 0).all()

    def test_cdf_is_level_mixture(self, distribution):
        drift = DriftModel(CellSpec())
        t = units.DAY
        expected = np.mean([drift.error_probability(l, t) for l in range(4)])
        assert distribution.cdf(t) == pytest.approx(expected, rel=0.02)

    def test_quantile_inverts_cdf(self, distribution):
        for u in (1e-6, 1e-4, 1e-2, 0.05):
            if u >= distribution.max_probability:
                continue
            t = distribution.quantile(np.array([u]))[0]
            assert distribution.cdf(t) == pytest.approx(u, rel=0.05)

    def test_quantile_above_mass_is_inf(self, distribution):
        u = np.array([distribution.max_probability + 1e-6, 0.999])
        assert np.isinf(distribution.quantile(u)).all()

    def test_level_cdf_top_level_zero(self, distribution):
        assert distribution.level_cdf(3, units.YEAR) == 0.0
        with pytest.raises(ValueError):
            distribution.level_cdf(7, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CrossingDistribution(t_min=0.0)
        with pytest.raises(ValueError):
            CrossingDistribution(points=2)


class TestOrderStatistics:
    def test_sorted_rows(self, distribution, rng):
        sample = distribution.sample_smallest(200, 256, 16, rng)
        assert sample.shape == (200, 16)
        finite = np.where(np.isfinite(sample), sample, np.inf)
        assert (np.diff(finite, axis=1) >= 0).all()

    def test_first_order_statistic_matches_theory(self, distribution, rng):
        # P(min of C crossings <= T) = 1 - (1 - F(T))^C.
        sample = distribution.sample_smallest(50_000, 256, 1, rng)
        T = units.DAY
        empirical = (sample[:, 0] <= T).mean()
        F = float(distribution.cdf(T))
        theory = 1 - (1 - F) ** 256
        assert empirical == pytest.approx(theory, abs=0.01)

    def test_counts_match_binomial_mean(self, distribution, rng):
        sample = distribution.sample_smallest(20_000, 256, 24, rng)
        T = units.DAY
        counts = (sample <= T).sum(axis=1)
        expected = 256 * float(distribution.cdf(T))
        assert counts.mean() == pytest.approx(expected, rel=0.05)

    def test_validation(self, distribution, rng):
        with pytest.raises(ValueError):
            distribution.sample_smallest(10, 8, 9, rng)
        with pytest.raises(ValueError):
            distribution.sample_smallest(10, 8, 0, rng)


class TestBinomialHelpers:
    def test_pmf_sums_to_one(self):
        pmf = _binomial_pmf(20, 0.3, 20)
        assert pmf.sum() == pytest.approx(1.0)

    def test_pmf_degenerate(self):
        assert _binomial_pmf(10, 0.0, 5)[0] == 1.0
        assert _binomial_pmf(10, 1.0, 10)[-1] == 1.0

    def test_tail_matches_complement(self):
        n, p, t = 50, 0.1, 3
        pmf = _binomial_pmf(n, p, n)
        assert _binomial_tail(n, p, t) == pytest.approx(pmf[t + 1 :].sum(), rel=1e-9)

    def test_tail_tiny_p_stable(self):
        tail = _binomial_tail(256, 1e-9, 1)
        assert 0 < tail < 1e-12

    def test_tail_t_at_n(self):
        assert _binomial_tail(10, 0.5, 10) == 0.0


class TestAnalyticModel:
    def test_line_failure_monotone_in_interval(self, model):
        intervals = [units.MINUTE, units.HOUR, units.DAY, units.WEEK]
        probs = [model.line_failure_probability(T, 4) for T in intervals]
        assert probs == sorted(probs)

    def test_stronger_ecc_always_safer(self, model):
        T = units.HOUR
        probs = [model.line_failure_probability(T, t) for t in (1, 2, 4, 8)]
        assert probs == sorted(probs, reverse=True)
        # In the low-error regime each extra corrected error buys orders
        # of magnitude - the paper's strong-ECC argument.
        assert probs[0] > 1e3 * probs[-1]

    def test_ue_rate_scaling(self, model):
        rate = model.ue_rate_per_line(units.HOUR, 1)
        total = model.ue_per_population(units.HOUR, 1, 1000, units.DAY)
        assert total == pytest.approx(rate * 1000 * units.DAY)

    def test_required_interval_meets_target(self, model):
        target = 1e-9
        interval = model.required_interval(4, target)
        assert model.line_failure_probability(interval, 4) <= target
        # And it is not absurdly conservative (the boundary is nearby).
        assert model.line_failure_probability(interval * 2.5, 4) > target

    def test_required_interval_strong_ecc_longer(self, model):
        target = 1e-9
        weak = model.required_interval(1, target)
        strong = model.required_interval(4, target)
        assert strong > 5 * weak

    def test_expected_errors(self, model):
        errors = model.expected_errors_per_line(units.DAY)
        assert errors == pytest.approx(
            256 * model.cell_error_probability(units.DAY)
        )

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.line_failure_probability(1.0, -1)
        with pytest.raises(ValueError):
            model.ue_rate_per_line(0.0, 1)
        with pytest.raises(ValueError):
            AnalyticModel(model.distribution, 0)
