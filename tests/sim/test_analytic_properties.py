"""Property tests for the analytic crossing-time machinery.

``tests/sim/test_analytic.py`` pins example-based behavior; this module
states the *laws* as hypothesis properties over the tabulated
:class:`repro.sim.analytic.CrossingDistribution` (and the
:class:`~repro.sim.analytic.AnalyticModel` interval solver built on it):

* the mixture CDF is monotone, bounded, and respects its grid range;
* ``quantile`` inverts ``cdf`` up to the tabulation grid (round-tripping
  a CDF value through the inverse reproduces it exactly, flat segments
  included);
* ``sample_smallest`` rows are sorted order statistics whose empirical
  law matches the mixture CDF (a KS-style check on the first order
  statistic at an arbitrary probe time);
* ``required_interval`` brackets its target: the returned interval
  meets the failure budget and is maximal up to bisection tolerance.

The hypothesis profile is pinned in ``tests/conftest.py`` (derandomized,
no deadline), so these runs are deterministic and CI-safe.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.params import CellSpec
from repro.sim.analytic import AnalyticModel, CrossingDistribution

#: One module-scope tabulation: the properties quantify over inputs, not
#: over cell specs, so the ~100 ms tabulation cost is paid once.
DISTRIBUTION = CrossingDistribution(CellSpec())
MODEL = AnalyticModel(DISTRIBUTION, cells_per_line=256)


def times_strategy():
    """Log-uniform times spanning the tabulation grid (and past its ends)."""
    return st.floats(min_value=-3.0, max_value=13.0).map(lambda e: 10.0**e)


class TestCdfLaws:
    @given(exponents=st.lists(
        st.floats(min_value=-3.0, max_value=13.0), min_size=2, max_size=8,
    ))
    def test_cdf_monotone_and_bounded(self, exponents):
        times = np.sort(10.0 ** np.asarray(exponents))
        values = DISTRIBUTION.cdf(times)
        assert (np.diff(values) >= 0.0).all()
        assert float(values[0]) >= 0.0
        assert float(values[-1]) <= DISTRIBUTION.max_probability <= 1.0

    @given(t=times_strategy())
    def test_cdf_dominates_every_level(self, t):
        # The mixture is the mean over levels, so it sits between the
        # fastest- and slowest-crossing level CDFs.
        per_level = [
            float(DISTRIBUTION.level_cdf(level, t))
            for level in range(DISTRIBUTION.spec.num_levels)
        ]
        mixture = float(DISTRIBUTION.cdf(t))
        assert min(per_level) - 1e-12 <= mixture <= max(per_level) + 1e-12


class TestQuantileInversion:
    @given(t=times_strategy())
    def test_cdf_value_round_trips_through_quantile(self, t):
        u = float(DISTRIBUTION.cdf(t))
        if not 0.0 < u < DISTRIBUTION.max_probability:
            return  # outside the invertible range: quantile is inf/edge
        t_back = float(DISTRIBUTION.quantile(np.array([u]))[0])
        u_back = float(DISTRIBUTION.cdf(t_back))
        # Grid-exact: interpolating back lands on the same CDF plateau.
        assert u_back == pytest.approx(u, rel=1e-9, abs=1e-12)

    @given(us=st.lists(
        st.floats(min_value=1e-9, max_value=0.999), min_size=2, max_size=8,
    ))
    def test_quantile_monotone(self, us):
        u = np.sort(np.asarray(us))
        t = DISTRIBUTION.quantile(u)
        finite = np.isfinite(t)
        assert (np.diff(t[finite]) >= 0.0).all()
        # Mass above the crossing probability maps to infinity, never to
        # a finite fabricated time.
        assert np.isinf(t[u >= DISTRIBUTION.max_probability]).all()


class TestOrderStatisticsLaw:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        keep=st.integers(min_value=1, max_value=8),
    )
    def test_rows_are_sorted_order_statistics(self, seed, keep):
        rng = np.random.default_rng(seed)
        sample = DISTRIBUTION.sample_smallest(64, 256, keep, rng)
        assert sample.shape == (64, keep)
        finite = np.where(np.isfinite(sample), sample, np.inf)
        assert (np.diff(finite, axis=1) >= 0.0).all()

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        exponent=st.floats(min_value=3.0, max_value=6.0),
    )
    def test_first_order_statistic_matches_mixture_cdf(self, seed, exponent):
        # KS-style: the empirical P(min <= T) must sit within the
        # one-point Kolmogorov band of 1 - (1 - F(T))^C.
        lines, cells = 1500, 64
        t_probe = 10.0**exponent
        rng = np.random.default_rng(seed)
        sample = DISTRIBUTION.sample_smallest(lines, cells, 1, rng)
        empirical = float((sample[:, 0] <= t_probe).mean())
        F = float(DISTRIBUTION.cdf(t_probe))
        theory = 1.0 - (1.0 - F) ** cells
        # K_alpha / sqrt(n) with K ~ 1.95 (alpha ~ 1e-3), plus slack for
        # the 50-example hypothesis budget.
        assert abs(empirical - theory) <= 2.2 / math.sqrt(lines)


class TestRequiredIntervalBracketing:
    @given(
        t_ecc=st.integers(min_value=1, max_value=6),
        log_target=st.floats(min_value=-8.0, max_value=-0.5),
    )
    def test_interval_meets_and_saturates_the_budget(self, t_ecc, log_target):
        target = 10.0**log_target
        high = 1e10
        interval = MODEL.required_interval(t_ecc, target, high=high)
        # The returned interval always meets the budget...
        assert MODEL.line_failure_probability(interval, t_ecc) <= target
        if interval < high:
            # ...and is maximal: 5% longer already violates it (geometric
            # bisection terminates well below that slack).
            assert (
                MODEL.line_failure_probability(1.05 * interval, t_ecc) > target
            )

    @given(t_ecc=st.integers(min_value=1, max_value=6))
    def test_looser_budget_allows_longer_interval(self, t_ecc):
        tight = MODEL.required_interval(t_ecc, 1e-6)
        loose = MODEL.required_interval(t_ecc, 1e-3)
        assert loose >= tight
