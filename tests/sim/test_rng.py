"""Named RNG streams: determinism and independence."""

from __future__ import annotations

import pytest

from repro.sim.rng import RngStreams


class TestStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(7).get("drift").random(10)
        b = RngStreams(7).get("drift").random(10)
        assert (a == b).all()

    def test_different_names_different_draws(self):
        streams = RngStreams(7)
        a = streams.get("drift").random(10)
        b = streams.get("workload").random(10)
        assert not (a == b).all()

    def test_different_seeds_different_draws(self):
        a = RngStreams(7).get("drift").random(10)
        b = RngStreams(8).get("drift").random(10)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        streams = RngStreams(7)
        assert streams.get("x") is streams.get("x")

    def test_spawn_is_deterministic_and_distinct(self):
        parent = RngStreams(7)
        child_a = parent.spawn("region0").get("engine").random(5)
        child_b = RngStreams(7).spawn("region0").get("engine").random(5)
        other = parent.spawn("region1").get("engine").random(5)
        assert (child_a == child_b).all()
        assert not (child_a == other).all()

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            RngStreams(-1)
        with pytest.raises(ValueError):
            RngStreams(2**63)
