"""Lifetime projection: wear-out math and policy ordering."""

from __future__ import annotations

import math

import pytest

from repro import units
from repro.params import CellSpec, EnduranceSpec
from repro.pcm.endurance import EnduranceModel
from repro.sim.analytic import CrossingDistribution
from repro.sim.lifetime import project_lifetime, wearout_writes
from repro.sim.renewal import RenewalModel


@pytest.fixture(scope="module")
def renewal() -> RenewalModel:
    return RenewalModel(CrossingDistribution(CellSpec()), cells_per_line=256)


class TestWearoutWrites:
    def test_inverse_of_forward_model(self):
        spec = EnduranceSpec(mean_writes=1e8, sigma_log10=0.25)
        for q in (1e-4, 1e-2, 0.5):
            writes = wearout_writes(spec, q)
            model = EnduranceModel(spec)
            assert model.expected_stuck_fraction(writes) == pytest.approx(q, rel=1e-3)

    def test_median_is_mean_adjusted(self):
        spec = EnduranceSpec(mean_writes=1e8, sigma_log10=0.25)
        median = wearout_writes(spec, 0.5)
        # Lognormal: median = mean * exp(-sigma^2/2) < mean.
        assert median < 1e8

    def test_deterministic_endurance(self):
        spec = EnduranceSpec(mean_writes=1000, sigma_log10=0.0)
        assert wearout_writes(spec, 0.01) == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            wearout_writes(EnduranceSpec(), 0.0)
        with pytest.raises(ValueError):
            wearout_writes(EnduranceSpec(), 1.0)


class TestProjection:
    def test_fewer_scrub_writes_longer_life(self, renewal):
        endurance = EnduranceSpec()
        eager = project_lifetime(
            renewal, units.HOUR, t_ecc=4, threshold=1, endurance=endurance
        )
        lazy = project_lifetime(
            renewal, units.HOUR, t_ecc=4, threshold=3, endurance=endurance
        )
        assert lazy.scrub_write_rate < eager.scrub_write_rate
        assert lazy.years_to_wearout > eager.years_to_wearout
        # The soft/hard trade-off in closed form.
        assert lazy.soft_ue_rate >= eager.soft_ue_rate

    def test_demand_writes_shorten_life(self, renewal):
        endurance = EnduranceSpec()
        idle = project_lifetime(
            renewal, units.HOUR, 4, 3, endurance, demand_write_rate=0.0
        )
        busy = project_lifetime(
            renewal, units.HOUR, 4, 3, endurance,
            demand_write_rate=1.0 / units.HOUR,
        )
        assert busy.years_to_wearout < idle.years_to_wearout
        assert busy.total_write_rate > idle.total_write_rate

    def test_magnitudes_are_sane(self, renewal):
        # ~1e8 endurance at roughly one write-back per day-scale renewal:
        # lifetime should land in years-to-centuries, not seconds.
        report = project_lifetime(
            renewal, units.HOUR, 4, 3, EnduranceSpec(),
            demand_write_rate=1.0 / units.HOUR,
        )
        assert 1.0 < report.years_to_wearout < 1e7
        assert math.isfinite(report.years_to_wearout)

    def test_zero_rates_live_forever(self, renewal):
        # A policy that never writes back cannot exist (threshold <= t),
        # but demand-free SLC-like zero-error configs are representable by
        # a huge interval where write probability ~ 1 per cycle anyway;
        # instead verify the infinite branch directly via the dataclass.
        report = project_lifetime(
            renewal, units.HOUR, 4, 3, EnduranceSpec(), demand_write_rate=0.0
        )
        assert report.years_to_wearout > 0

    def test_validation(self, renewal):
        with pytest.raises(ValueError):
            project_lifetime(
                renewal, units.HOUR, 4, 3, EnduranceSpec(),
                demand_write_rate=-1.0,
            )
