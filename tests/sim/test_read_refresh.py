"""Read-triggered refresh: demand reads as scrub probes."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import units
from repro.core import threshold_scrub
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import DemandRates, uniform_rates

BASE = SimulationConfig(
    num_lines=2048, region_size=256, horizon=14 * units.DAY, endurance=None
)


def read_only_rates(num_lines: int, reads_per_line_per_hour: float) -> DemandRates:
    reads = np.full(num_lines, reads_per_line_per_hour / units.HOUR)
    return DemandRates(
        write_rate=np.zeros(num_lines), read_rate=reads, name="read-only"
    )


class TestReadRefresh:
    def test_reads_substitute_for_scrub_writes(self):
        # Long scrub interval + frequent reads: with read_refresh the reads
        # find and refresh drifting lines long before the scrubber does.
        rates = read_only_rates(BASE.num_lines, reads_per_line_per_hour=2.0)
        policy = lambda: threshold_scrub(12 * units.HOUR, 4, threshold=3)

        plain = run_experiment(policy(), BASE, rates)
        refreshed = run_experiment(
            policy(), dataclasses.replace(BASE, read_refresh=True), rates
        )
        # Reads surface errors earlier: strictly fewer UEs.
        assert refreshed.uncorrectable < plain.uncorrectable
        # And the refresh writes appear in the scrub-write ledger.
        assert refreshed.scrub_writes > plain.scrub_writes

    def test_no_reads_means_no_effect(self):
        plain = run_experiment(threshold_scrub(units.HOUR, 4), BASE)
        refreshed = run_experiment(
            threshold_scrub(units.HOUR, 4),
            dataclasses.replace(BASE, read_refresh=True),
        )
        assert plain.stats.summary() == refreshed.stats.summary()

    def test_write_traffic_unaffected_by_flag(self):
        # Pure write workload: read refresh must change nothing.
        rates = uniform_rates(
            BASE.num_lines, BASE.num_lines / (2 * units.HOUR),
            read_write_ratio=0.0,
        )
        plain = run_experiment(threshold_scrub(units.HOUR, 4), BASE, rates)
        refreshed = run_experiment(
            threshold_scrub(units.HOUR, 4),
            dataclasses.replace(BASE, read_refresh=True),
            rates,
        )
        assert plain.uncorrectable == refreshed.uncorrectable

    def test_ue_surfaces_at_read(self):
        # Scrub far too slow to protect anything; reads still encounter
        # the corrupt lines and the UEs are counted.
        rates = read_only_rates(BASE.num_lines, reads_per_line_per_hour=0.5)
        config = dataclasses.replace(BASE, read_refresh=True)
        result = run_experiment(
            threshold_scrub(7 * units.DAY, 1, threshold=1, with_detector=False),
            config,
            rates,
        )
        assert result.uncorrectable > 0
