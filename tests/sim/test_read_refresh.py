"""Read-triggered refresh: demand reads as scrub probes."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import units
from repro.core import basic_scrub, threshold_scrub
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import DemandRates, uniform_rates

BASE = SimulationConfig(
    num_lines=2048, region_size=256, horizon=14 * units.DAY, endurance=None
)


def read_only_rates(num_lines: int, reads_per_line_per_hour: float) -> DemandRates:
    reads = np.full(num_lines, reads_per_line_per_hour / units.HOUR)
    return DemandRates(
        write_rate=np.zeros(num_lines), read_rate=reads, name="read-only"
    )


class TestReadRefresh:
    def test_reads_substitute_for_scrub_writes(self):
        # Long scrub interval + frequent reads: with read_refresh the reads
        # find and refresh drifting lines long before the scrubber does.
        rates = read_only_rates(BASE.num_lines, reads_per_line_per_hour=2.0)
        policy = lambda: threshold_scrub(12 * units.HOUR, 4, threshold=3)

        plain = run_experiment(policy(), BASE, rates)
        refreshed = run_experiment(
            policy(), dataclasses.replace(BASE, read_refresh=True), rates
        )
        # Reads surface errors earlier: strictly fewer UEs.
        assert refreshed.uncorrectable < plain.uncorrectable
        # And the refresh writes appear in the scrub-write ledger.
        assert refreshed.scrub_writes > plain.scrub_writes

    def test_no_reads_means_no_effect(self):
        plain = run_experiment(threshold_scrub(units.HOUR, 4), BASE)
        refreshed = run_experiment(
            threshold_scrub(units.HOUR, 4),
            dataclasses.replace(BASE, read_refresh=True),
        )
        assert plain.stats.summary() == refreshed.stats.summary()

    def test_write_traffic_unaffected_by_flag(self):
        # Pure write workload: read refresh must change nothing.
        rates = uniform_rates(
            BASE.num_lines, BASE.num_lines / (2 * units.HOUR),
            read_write_ratio=0.0,
        )
        plain = run_experiment(threshold_scrub(units.HOUR, 4), BASE, rates)
        refreshed = run_experiment(
            threshold_scrub(units.HOUR, 4),
            dataclasses.replace(BASE, read_refresh=True),
            rates,
        )
        assert plain.uncorrectable == refreshed.uncorrectable

    def test_ue_surfaces_at_read(self):
        # Scrub far too slow to protect anything; reads still encounter
        # the corrupt lines and the UEs are counted.
        rates = read_only_rates(BASE.num_lines, reads_per_line_per_hour=0.5)
        config = dataclasses.replace(BASE, read_refresh=True)
        result = run_experiment(
            threshold_scrub(7 * units.DAY, 1, threshold=1, with_detector=False),
            config,
            rates,
        )
        assert result.uncorrectable > 0


class TestPinnedResults:
    """Exact values pinned across the read-refresh gather optimization.

    ``_apply_read_refresh`` now gathers the uncorrectable-threshold
    crossing times only for the *hit* lines instead of materialising a
    fancy-indexed copy for every pending line.  The probe-time exponential
    draw deliberately stays full-pending-size so the RNG stream is
    consumed in the exact pre-optimization order; these values were
    captured before the change and must never move.
    """

    CONFIG = dataclasses.replace(
        BASE, num_lines=1024, horizon=7 * units.DAY, read_refresh=True
    )

    def rates(self):
        reads = np.full(self.CONFIG.num_lines, 2e-4)
        return DemandRates(
            write_rate=np.zeros(self.CONFIG.num_lines),
            read_rate=reads,
            name="read-only",
        )

    def test_threshold_run_pinned(self):
        result = run_experiment(
            threshold_scrub(2 * units.HOUR, 3), self.CONFIG, self.rates()
        )
        assert result.stats.summary() == {
            "visits": 86016.0,
            "uncorrectable": 81.0,
            "scrub_reads": 86016.0,
            "scrub_decodes": 49106.0,
            "scrub_writes": 11672.0,
            "scrub_energy_j": 0.0002609525655179255,
            "detector_misses": 1.0,
            "retired": 0.0,
            "demand_writes": 0.0,
        }
        histogram = result.stats.error_histogram
        assert histogram[:8].tolist() == [0, 42839, 5604, 607, 52, 4, 0, 0]
        assert histogram[8:].sum() == 0
        assert result.final_state["mean_writes_per_line"] == 11.4775390625

    def test_basic_run_pinned(self):
        result = run_experiment(
            basic_scrub(2 * units.HOUR), self.CONFIG, self.rates()
        )
        assert result.uncorrectable == 2553
        assert result.stats.scrub_writes == 21969
        assert result.stats.scrub_energy == 0.0004163041919999997
