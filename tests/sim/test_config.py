"""Simulation configuration validation and derived values."""

from __future__ import annotations

import dataclasses

import pytest

from repro import units
from repro.sim.config import SimulationConfig


class TestDefaults:
    def test_default_geometry(self):
        config = SimulationConfig()
        assert config.cells_per_line == 256
        assert config.num_lines % config.region_size == 0
        assert config.horizon == 30 * units.DAY

    def test_replace_for_sweeps(self):
        config = SimulationConfig()
        hot = dataclasses.replace(config, temperature_k=340.0)
        assert hot.temperature_k == 340.0
        assert hot.num_lines == config.num_lines


class TestValidation:
    def test_region_must_divide_lines(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_lines=1000, region_size=512)

    def test_positive_horizon(self):
        with pytest.raises(ValueError):
            SimulationConfig(horizon=0.0)

    def test_positive_temperature(self):
        with pytest.raises(ValueError):
            SimulationConfig(temperature_k=-5.0)

    def test_keep_must_exceed_strongest_ecc(self):
        with pytest.raises(ValueError):
            SimulationConfig(keep=8)

    def test_positive_lines(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_lines=0, region_size=1)
