"""Quiescent-visit fast-forward: bit-identical to the naive walk.

The fast-forward layer's contract is absolute: with ``fast_forward`` on or
off, every stat, every joule, every histogram bucket, and the final device
state must match bit for bit.  These tests pin that contract across the
policy matrix, the standdown paths, and the supporting machinery (bulk
ledger charges, RNG advancement, per-region caches).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import units
from repro.core import (
    adaptive_scrub,
    basic_scrub,
    strong_ecc_scrub,
    threshold_scrub,
)
from repro.core.stats import ScrubStats
from repro.obs.config import ObsConfig
from repro.params import EnduranceSpec
from repro.pcm.energy import OperationCosts
from repro.sim import SimulationConfig, run_experiment
from repro.sim.population import _RNG_ADVANCE_CHUNK, _advance_rng
from repro.sim.runner import build_population
from repro.sim.rng import RngStreams
from repro.workloads.generators import DemandRates, uniform_rates

#: Drift-compensated sensing removes the systematic drift error floor, so
#: idle regions spend most of the horizon genuinely error-free — the
#: operating point where fast-forward actually engages.
QUIET = SimulationConfig(
    num_lines=1024,
    region_size=256,
    horizon=4 * units.DAY,
    endurance=None,
    compensated_sensing=True,
)
#: Single region: the only layout where detector-gated policies (which draw
#: engine RNG every visit) may fast-forward.
QUIET_ONE_REGION = dataclasses.replace(QUIET, region_size=QUIET.num_lines)


def run_pair(policy_factory, config, rates=None):
    """The same experiment with fast-forward on and off."""
    on = run_experiment(policy_factory(), config, rates)
    off = run_experiment(
        policy_factory(),
        dataclasses.replace(config, fast_forward=False),
        rates,
    )
    return on, off


def assert_identical(on, off):
    assert on.stats.summary() == off.stats.summary()
    assert on.stats.energy_breakdown() == off.stats.energy_breakdown()
    assert on.stats.error_histogram.tolist() == off.stats.error_histogram.tolist()
    assert on.stats.visits_with_errors == off.stats.visits_with_errors
    assert on.stats.partial_cells == off.stats.partial_cells
    assert on.final_state == off.final_state


class TestBitIdentity:
    def test_basic_multi_region(self):
        on, off = run_pair(lambda: basic_scrub(2 * units.HOUR), QUIET)
        assert_identical(on, off)
        assert on.fast_forward["skipped_visits"] > 0
        assert off.fast_forward is None

    def test_strong_multi_region(self):
        on, off = run_pair(lambda: strong_ecc_scrub(2 * units.HOUR, 4), QUIET)
        assert_identical(on, off)
        assert on.fast_forward["skipped_visits"] > 0

    def test_threshold_single_region_detector(self):
        on, off = run_pair(
            lambda: threshold_scrub(2 * units.HOUR, 3), QUIET_ONE_REGION
        )
        assert_identical(on, off)
        assert on.fast_forward["skipped_visits"] > 0

    def test_adaptive_single_region_clamped(self):
        # max_interval == base interval: relax is a no-op, so the adaptive
        # policy is fast-forward eligible from the first visit.
        on, off = run_pair(
            lambda: adaptive_scrub(
                2 * units.HOUR, 3, max_interval=2 * units.HOUR
            ),
            QUIET_ONE_REGION,
        )
        assert_identical(on, off)
        assert on.fast_forward["skipped_visits"] > 0

    def test_hot_config_rarely_engages_but_stays_identical(self):
        # Uncompensated sensing at 300 K: drift errors are near-constant,
        # regions are almost never quiescent — identity must hold anyway.
        hot = dataclasses.replace(QUIET, compensated_sensing=False)
        on, off = run_pair(lambda: basic_scrub(2 * units.HOUR), hot)
        assert_identical(on, off)

    def test_identity_with_retirement_limit(self):
        config = dataclasses.replace(
            QUIET, endurance=EnduranceSpec(), retire_hard_limit=4
        )
        on, off = run_pair(lambda: basic_scrub(2 * units.HOUR), config)
        assert_identical(on, off)

    def test_jump_counter_consistent(self):
        on, __ = run_pair(lambda: basic_scrub(2 * units.HOUR), QUIET)
        ff = on.fast_forward
        # Each jump folds at least two visits (one is never worth a jump).
        assert ff["jumps"] >= 1
        assert ff["skipped_visits"] >= 2 * ff["jumps"]


class TestStanddownPaths:
    def trace_config(self, base):
        return dataclasses.replace(base, obs=ObsConfig(trace=True))

    def disabled_reasons(self, result):
        return {
            e["reason"]
            for e in result.trace
            if e["event"] == "fast_forward_disabled"
        }

    def test_demand_loaded_regions_stand_down(self):
        rates = uniform_rates(QUIET.num_lines, QUIET.num_lines / units.HOUR)
        result = run_experiment(
            basic_scrub(2 * units.HOUR), self.trace_config(QUIET), rates
        )
        assert "demand" in self.disabled_reasons(result)
        assert result.fast_forward["skipped_visits"] == 0

    def test_read_refresh_stands_down(self):
        config = self.trace_config(
            dataclasses.replace(QUIET, read_refresh=True)
        )
        reads = DemandRates(
            write_rate=np.zeros(QUIET.num_lines),
            read_rate=np.full(QUIET.num_lines, 2e-4),
            name="read-only",
        )
        result = run_experiment(basic_scrub(2 * units.HOUR), config, reads)
        assert self.disabled_reasons(result) == {"read_refresh"}
        assert result.fast_forward["skipped_visits"] == 0

    def test_multi_region_detector_stands_down(self):
        result = run_experiment(
            threshold_scrub(2 * units.HOUR, 3), self.trace_config(QUIET)
        )
        assert "detector_interleaving" in self.disabled_reasons(result)
        assert result.fast_forward["skipped_visits"] == 0

    def test_ineligible_policy_stands_down(self):
        # Adaptive below max_interval relaxes on zero-error visits, so it
        # reports no fast-forward interval until the ladder tops out.
        result = run_experiment(
            adaptive_scrub(2 * units.HOUR, 3), self.trace_config(QUIET_ONE_REGION)
        )
        assert "policy" in self.disabled_reasons(result)

    def test_fast_forward_off_emits_nothing(self):
        config = self.trace_config(
            dataclasses.replace(QUIET, fast_forward=False)
        )
        result = run_experiment(basic_scrub(2 * units.HOUR), config)
        events = {e["event"] for e in result.trace}
        assert "fast_forward" not in events
        assert "fast_forward_disabled" not in events
        assert result.fast_forward is None

    def test_engaged_run_emits_fast_forward_events(self):
        result = run_experiment(
            basic_scrub(2 * units.HOUR), self.trace_config(QUIET)
        )
        jumps = [e for e in result.trace if e["event"] == "fast_forward"]
        assert len(jumps) == result.fast_forward["jumps"]
        assert sum(e["skipped"] for e in jumps) == (
            result.fast_forward["skipped_visits"]
        )


class TestBulkPrimitives:
    def costs(self):
        return OperationCosts(
            read_energy=2e-12,
            write_energy=2.5e-11,
            detect_energy=1e-12,
            decode_energy=1.1e-11,
            read_latency=1e-7,
            write_latency=1e-6,
            decode_latency=1e-8,
        )

    @pytest.mark.parametrize("detector", [True, False])
    def test_record_zero_error_visits_matches_loop(self, detector):
        bulk = ScrubStats(costs=self.costs())
        loop = ScrubStats(costs=self.costs())
        visits, lines = 137, 256
        bulk.record_zero_error_visits(
            visits, lines, detector=detector, decode_all=not detector
        )
        for __ in range(visits):
            loop.record_reads(lines)
            if detector:
                loop.record_detects(lines)
                loop.record_decodes(0)
            else:
                loop.record_decodes(lines)
                loop.record_error_counts(np.zeros(lines, dtype=np.int64))
        # Bitwise: same iterated float additions, not a fused product.
        assert bulk.summary() == loop.summary()
        assert bulk.energy_breakdown() == loop.energy_breakdown()
        assert bulk.error_histogram.tolist() == loop.error_histogram.tolist()

    def test_record_zero_error_visits_rejects_negative(self):
        stats = ScrubStats(costs=self.costs())
        with pytest.raises(ValueError):
            stats.record_zero_error_visits(-1, 4, detector=False, decode_all=True)

    def test_add_repeated_matches_iterated_add(self):
        a = ScrubStats(costs=self.costs()).ledger
        b = ScrubStats(costs=self.costs()).ledger
        a.add_repeated("scrub_read", 3.3e-12, 64, 1000)
        for __ in range(1000):
            b.add("scrub_read", 3.3e-12, 64)
        assert a.energy == b.energy
        assert a.counts == b.counts

    def test_rng_advance_matches_per_visit_draws(self):
        # numpy's Generator fills sequentially: random(k * n) in chunks
        # consumes the same stream as k separate random(n) calls.  This is
        # the property the detector fast-forward path leans on.
        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        visits, lines = 13, 100
        for __ in range(visits):
            a.random(lines)
        _advance_rng(b, visits * lines)
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_rng_advance_chunks_large_counts(self):
        a = np.random.default_rng(11)
        b = np.random.default_rng(11)
        count = _RNG_ADVANCE_CHUNK + 12345
        a.random(count)
        _advance_rng(b, count)
        assert a.random(3).tolist() == b.random(3).tolist()


class TestRegionCaches:
    def population(self, seed=3, num_lines=64):
        config = dataclasses.replace(
            QUIET, num_lines=num_lines, region_size=num_lines // 4, seed=seed
        )
        pop = build_population(config, RngStreams(config.seed))
        pop.enable_region_tracking(config.region_size)
        return pop, config.region_size

    def direct_actionable(self, pop, region, size):
        sl = slice(region * size, (region + 1) * size)
        if pop.hard_mismatch[sl].any():
            return -np.inf
        return float(pop.crossing[sl, 0].min())

    def test_cache_matches_direct_computation(self):
        pop, size = self.population()
        for region in range(pop.num_lines // size):
            assert pop.region_actionable_time(region) == (
                self.direct_actionable(pop, region, size)
            )

    def test_rewrite_invalidates_cache(self):
        pop, size = self.population()
        before = pop.region_actionable_time(1)
        lines = np.arange(size, 2 * size)
        pop.rewrite(lines, np.full(size, 1e6), data_changed=False)
        after = pop.region_actionable_time(1)
        assert after == self.direct_actionable(pop, 1, size)
        assert after > before  # fresh draws anchored far in the future

    def test_partial_rewrite_invalidates_cache(self):
        pop, size = self.population()
        # Rewrite past the region's first crossing so cells have drifted.
        horizon = pop.region_actionable_time(0) + units.DAY
        pop.region_actionable_time(0)  # warm the cache
        pop.partial_rewrite(np.arange(size), horizon)
        assert pop.region_actionable_time(0) == (
            self.direct_actionable(pop, 0, size)
        )

    def test_hard_mismatch_makes_region_immediately_actionable(self):
        pop, size = self.population()
        pop.region_actionable_time(2)  # warm the cache
        pop.hard_mismatch[2 * size] = 1
        pop._mark_regions_dirty(np.array([2 * size]))
        assert pop.region_actionable_time(2) == -np.inf

    def test_general_theta_consistent_with_cached_theta_one(self):
        pop, size = self.population()
        for region in range(pop.num_lines // size):
            cached = pop.region_actionable_time(region)
            general = pop.region_actionable_time(region, theta=1)
            assert cached == general
            # More errors take longer (or equally long) to accumulate.
            assert pop.region_actionable_time(region, theta=3) >= cached

    def test_theta_folds_hard_mismatches(self):
        pop, size = self.population()
        pop.hard_mismatch[0] = 3
        pop._mark_regions_dirty(np.array([0]))
        # Three standing hard errors: theta up to 3 is already reached.
        assert pop.region_actionable_time(0, theta=3) == -np.inf
        # theta=4: line 0 needs one more crossing (its first); the clean
        # lines need four (their fourth order statistic).
        expected = min(
            float(pop.crossing[0, 0]), float(pop.crossing[1:size, 3].min())
        )
        assert pop.region_actionable_time(0, theta=4) == expected

    def test_tracking_requires_divisible_region_size(self):
        pop, __ = self.population()
        with pytest.raises(ValueError):
            pop.enable_region_tracking(7)

    def test_queries_require_tracking(self):
        config = dataclasses.replace(QUIET, num_lines=64, region_size=16)
        pop = build_population(config, RngStreams(config.seed))
        with pytest.raises(RuntimeError):
            pop.region_actionable_time(0)
        with pytest.raises(RuntimeError):
            pop.region_max_stuck(0)


class TestObservability:
    def test_timeseries_identical_on_and_off(self):
        obs = ObsConfig(sample_every=QUIET.horizon / 8)
        on, off = run_pair(
            lambda: basic_scrub(2 * units.HOUR),
            dataclasses.replace(QUIET, obs=obs),
        )
        assert on.fast_forward["skipped_visits"] > 0
        # The skipped-visit counter is a diagnostic column that only exists
        # when fast-forward is on; every measured column must match exactly.
        strip = lambda s: {
            k: v for k, v in s.items() if k != "fast_forward_skipped_visits"
        }
        assert len(on.timeseries) == len(off.timeseries)
        for a, b in zip(on.timeseries, off.timeseries):
            assert strip(a) == strip(b)

    def test_invariant_checker_accepts_fast_forward(self):
        config = dataclasses.replace(
            QUIET,
            verify=dataclasses.replace(QUIET.verify, invariants=True),
        )
        result = run_experiment(basic_scrub(2 * units.HOUR), config)
        assert result.fast_forward["skipped_visits"] > 0

    def test_result_dict_omits_fast_forward(self):
        # to_dict feeds the export tables; the counters are diagnostics,
        # not results, and must not perturb golden exports.
        result = run_experiment(basic_scrub(2 * units.HOUR), QUIET)
        assert "fast_forward" not in result.to_dict()
