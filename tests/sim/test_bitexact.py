"""Bit-exact engine: data integrity, scrub behaviour, and costs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core import basic_scrub, light_scrub, strong_ecc_scrub, threshold_scrub
from repro.params import CellSpec, DriftParams, LineSpec, replace
from repro.sim.bitexact import BitExactEngine
from repro.sim.rng import RngStreams
from repro.workloads.generators import uniform_rates
from repro.workloads.trace import trace_from_rates


def make_engine(policy, num_lines=8, seed=1, **kwargs) -> BitExactEngine:
    return BitExactEngine(policy, num_lines, RngStreams(seed), **kwargs)


class TestDataPath:
    def test_fresh_write_reads_back_exactly(self, rng):
        engine = make_engine(light_scrub(units.HOUR, 4))
        data = rng.integers(0, 2, 512, dtype=np.int8)
        engine.write_line(0, data, 0.0)
        raw = engine.read_raw_bits(0, 0.0)
        codeword, __ = engine._split(raw)
        assert np.array_equal(engine.codec.extract_data(codeword), data)

    def test_codeword_fills_whole_cells(self):
        # bch4+crc: 512 + 40 + 16 = 568 bits = 284 two-bit cells.
        engine = make_engine(light_scrub(units.HOUR, 4))
        assert engine.cells_per_line == 284

    def test_scrub_pass_on_fresh_memory_is_pure_reads(self, rng):
        engine = make_engine(light_scrub(units.HOUR, 4), num_lines=4)
        engine.write_random(0.0, rng)
        engine.scrub_pass(1.0)  # 1 second later: nothing drifted
        assert engine.stats.scrub_reads == 4
        assert engine.stats.scrub_decodes == 0
        assert engine.stats.scrub_writes == 0

    def test_without_detector_every_line_decodes(self, rng):
        engine = make_engine(strong_ecc_scrub(units.HOUR, 4), num_lines=4)
        engine.write_random(0.0, rng)
        engine.scrub_pass(1.0)
        assert engine.stats.scrub_decodes == 4


class TestScrubCorrectness:
    def fast_spec(self) -> LineSpec:
        """A drift spec fast enough to exercise errors within hours,
        but slow enough that error counts stay in the correctable range
        (~1-2 errors per line per hour)."""
        cell = CellSpec()
        return LineSpec(
            cell=replace(
                cell,
                drift=(
                    cell.drift[0],
                    DriftParams(0.03, 0.012),
                    DriftParams(0.08, 0.032),
                    cell.drift[3],
                ),
            )
        )

    def test_strong_scrub_keeps_data_intact(self):
        engine = make_engine(
            strong_ecc_scrub(units.HOUR, 8), num_lines=6,
            line_spec=self.fast_spec(), seed=3,
        )
        result = engine.run(horizon=12 * units.HOUR)
        # A rare tail line may exceed t=8 within one interval; the strong
        # code must keep such escapes to (at most) a stray event, and
        # recovery restores ground truth either way.
        assert result.stats.uncorrectable <= 1
        # Data must still decode to ground truth on a final check.
        for line in range(6):
            raw = engine.read_raw_bits(line, 12 * units.HOUR)
            codeword, __ = engine._split(raw)
            decoded = engine.codec.decode(codeword)
            assert decoded.ok
            assert np.array_equal(
                engine.codec.extract_data(decoded.bits), engine._data[line]
            )

    def test_basic_scrub_suffers_ues_under_fast_drift(self):
        engine = make_engine(
            basic_scrub(2 * units.HOUR), num_lines=6,
            line_spec=self.fast_spec(), seed=4,
        )
        result = engine.run(horizon=units.DAY)
        assert result.stats.uncorrectable > 0

    def test_threshold_defers_writes(self):
        spec = self.fast_spec()

        def run(threshold):
            engine = make_engine(
                threshold_scrub(units.HOUR, 4, threshold=threshold),
                num_lines=6, line_spec=spec, seed=5,
            )
            return engine.run(horizon=units.DAY).stats

        eager = run(1)
        lazy = run(3)
        assert lazy.scrub_writes < eager.scrub_writes

    def test_demand_writes_through_trace(self):
        rates = uniform_rates(4, total_write_rate=4 / units.HOUR)
        trace = trace_from_rates(rates, units.DAY, np.random.default_rng(6))
        engine = make_engine(light_scrub(6 * units.HOUR, 4), num_lines=4, seed=7)
        result = engine.run(horizon=units.DAY, trace=trace)
        assert result.stats.demand_writes == trace.num_writes


class TestValidationErrors:
    def test_wrong_data_length_rejected(self):
        engine = make_engine(light_scrub(units.HOUR, 4))
        with pytest.raises(ValueError):
            engine.write_line(0, np.zeros(100, dtype=np.int8), 0.0)

    def test_nonpositive_horizon_rejected(self):
        engine = make_engine(light_scrub(units.HOUR, 4))
        with pytest.raises(ValueError):
            engine.run(horizon=0.0)
