"""Unit helpers and formatting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "0s"),
            (128e-3, "128ms"),
            (1.0, "1s"),
            (90.0, "1.5min"),
            (3600.0, "1h"),
            (units.DAY, "1d"),
            (units.YEAR, "1yr"),
            (250e-9, "250ns"),
        ],
    )
    def test_format_seconds(self, value, expected):
        assert units.format_seconds(value) == expected

    def test_format_seconds_negative(self):
        assert units.format_seconds(-3600.0) == "-1h"

    @pytest.mark.parametrize(
        "value,expected",
        [(0.0, "0J"), (2e-12, "2pJ"), (1.5e-9, "1.5nJ"), (3e-3, "3mJ"), (2.0, "2J")],
    )
    def test_format_energy(self, value, expected):
        assert units.format_energy(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [(512, "512B"), (2048, "2KiB"), (3 * 1024 * 1024, "3MiB")],
    )
    def test_format_bytes(self, value, expected):
        assert units.format_bytes(value) == expected

    @pytest.mark.parametrize(
        "value,expected", [(950, "950"), (3_200_000, "3.2M"), (2e9, "2G")]
    )
    def test_format_count(self, value, expected):
        assert units.format_count(value) == expected


class TestHelpers:
    def test_seconds_conversion(self):
        assert units.seconds(2, units.HOUR) == 7200.0

    def test_log10_safe(self):
        assert units.log10_safe(100.0) == pytest.approx(2.0)
        assert units.log10_safe(0.0) == -math.inf
        assert units.log10_safe(-5.0) == -math.inf

    @given(x=st.floats(-100, 100))
    def test_clamp_in_range(self, x):
        assert -1.0 <= units.clamp(x, -1.0, 1.0) <= 1.0

    def test_clamp_empty_range(self):
        with pytest.raises(ValueError):
            units.clamp(0.0, 1.0, -1.0)

    def test_constants_consistent(self):
        assert units.WEEK == 7 * units.DAY
        assert units.YEAR > 365 * units.DAY
