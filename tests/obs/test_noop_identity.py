"""Integration: observability must never change simulation results.

The acceptance contract of the subsystem: a run with every pillar enabled
is bit-identical (stats, final state, histograms) to the same run with
observability off, telemetry lands on the RunResult only when requested,
and the sampler's final snapshot equals the end-of-run aggregates exactly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import units
from repro.core import adaptive_scrub, basic_scrub
from repro.obs import EVENT_FIELDS, ObsConfig, write_trace
from repro.sim import SimulationConfig, run_experiment

HORIZON = 2 * units.DAY


def _config(obs: ObsConfig | None = None) -> SimulationConfig:
    kwargs: dict = dict(
        num_lines=256, region_size=64, horizon=HORIZON, endurance=None
    )
    if obs is not None:
        kwargs["obs"] = obs
    return SimulationConfig(**kwargs)


FULL_OBS = ObsConfig(trace=True, sample_every=HORIZON / 8, profile=True)


class TestObsConfig:
    def test_disabled_by_default(self):
        assert ObsConfig().enabled is False
        assert SimulationConfig().obs.enabled is False

    def test_any_pillar_enables(self):
        assert ObsConfig(trace=True).enabled
        assert ObsConfig(sample_every=1.0).enabled
        assert ObsConfig(profile=True).enabled

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            ObsConfig(sample_every=0.0)


class TestNoopIdentity:
    def test_instrumented_run_bit_identical_to_plain(self):
        plain = run_experiment(basic_scrub(interval=units.HOUR), _config())
        traced = run_experiment(basic_scrub(interval=units.HOUR), _config(FULL_OBS))
        assert plain.stats.summary() == traced.stats.summary()
        assert plain.final_state == traced.final_state
        assert np.array_equal(
            plain.stats.error_histogram, traced.stats.error_histogram
        )

    def test_plain_run_carries_no_telemetry(self):
        plain = run_experiment(basic_scrub(interval=units.HOUR), _config())
        assert plain.trace is None
        assert plain.timeseries is None
        assert plain.profile is None
        blob = plain.to_dict()
        assert "timeseries" not in blob
        assert "profile" not in blob

    def test_partial_obs_only_fills_requested_pillars(self):
        result = run_experiment(
            basic_scrub(interval=units.HOUR),
            _config(ObsConfig(sample_every=HORIZON / 4)),
        )
        assert result.trace is None
        assert result.profile is None
        assert result.timeseries is not None and len(result.timeseries) >= 4


class TestSamplerStatsAgreement:
    def test_final_sample_equals_summary_exactly(self):
        result = run_experiment(
            adaptive_scrub(interval=units.HOUR), _config(FULL_OBS)
        )
        final = result.timeseries.final
        for key, value in result.stats.summary().items():
            assert final[key] == value
        assert final["t"] == HORIZON
        assert final["observed_errors"] == [
            int(v) for v in result.stats.error_histogram
        ]

    def test_samples_monotone_in_time_and_counters(self):
        result = run_experiment(
            basic_scrub(interval=units.HOUR), _config(FULL_OBS)
        )
        times = result.timeseries.column("t")
        assert times == sorted(times)
        reads = result.timeseries.column("scrub_reads")
        assert reads == sorted(reads)


class TestTraceSchema:
    def test_real_run_events_conform_and_roundtrip_jsonl(self, tmp_path):
        result = run_experiment(
            adaptive_scrub(interval=units.HOUR), _config(FULL_OBS)
        )
        assert result.trace, "an adaptive two-day run must emit events"
        names = {event["event"] for event in result.trace}
        assert "scrub_visit" in names
        for event in result.trace:
            required = EVENT_FIELDS[event["event"]]
            assert all(field in event for field in required)
            assert isinstance(event["t"], float)
        assert [e["seq"] for e in result.trace] == list(range(len(result.trace)))

        path = tmp_path / "trace.jsonl"
        assert write_trace(result.trace, path) == len(result.trace)
        back = [json.loads(line) for line in path.read_text().splitlines()]
        assert back == result.trace

    def test_profile_covers_engine_phases(self):
        result = run_experiment(
            basic_scrub(interval=units.HOUR), _config(FULL_OBS)
        )
        assert {"tabulate", "simulate", "visit", "demand", "decode"} <= set(
            result.profile
        )
        # One span per region visit == one scrub_visit trace event.
        scrub_visits = sum(1 for e in result.trace if e["event"] == "scrub_visit")
        assert result.profile["visit"]["calls"] == scrub_visits > 0
