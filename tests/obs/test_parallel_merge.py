"""Integration: telemetry is identical through the process pool.

Traces and time series depend only on each run's config seed and simulated
event order, so ``run_many(specs, jobs=N)`` must ship back the exact same
telemetry for any ``jobs`` value, and the deterministic merge helpers must
produce identical fleet views regardless of worker placement.
"""

from __future__ import annotations

from repro import units
from repro.obs import ObsConfig, merge_profiles, merge_timeseries, merge_traces
from repro.sim import RunSpec, SimulationConfig, run_many

HORIZON = 2 * units.DAY
OBS = ObsConfig(trace=True, sample_every=HORIZON / 4, profile=True)
CONFIG = SimulationConfig(
    num_lines=256, region_size=64, horizon=HORIZON, endurance=None, obs=OBS
)
INTERVALS = [units.HOUR, 2 * units.HOUR, 4 * units.HOUR]


def _specs() -> list[RunSpec]:
    return [RunSpec("adaptive", CONFIG, {"interval": i}) for i in INTERVALS]


class TestParallelTelemetry:
    def test_telemetry_identical_serial_vs_pool(self):
        serial = run_many(_specs(), jobs=1)
        pooled = run_many(_specs(), jobs=2)
        for a, b in zip(serial, pooled):
            assert a.trace == b.trace
            assert a.timeseries == b.timeseries
            # Profiles measure wall time (non-deterministic) but cover the
            # same phases with the same call counts.
            assert set(a.profile) == set(b.profile)
            for phase in a.profile:
                assert a.profile[phase]["calls"] == b.profile[phase]["calls"]

    def test_merges_deterministic_across_placements(self):
        serial = run_many(_specs(), jobs=1)
        pooled = run_many(_specs(), jobs=2)
        assert merge_traces([r.trace for r in serial]) == merge_traces(
            [r.trace for r in pooled]
        )
        assert merge_timeseries([r.timeseries for r in serial]) == merge_timeseries(
            [r.timeseries for r in pooled]
        )
        merged_profile = merge_profiles([r.profile for r in pooled])
        assert merged_profile["visit"]["calls"] == sum(
            r.profile["visit"]["calls"] for r in pooled
        )

    def test_final_samples_match_summaries_under_pool(self):
        for result in run_many(_specs(), jobs=2):
            final = result.timeseries.final
            for key, value in result.stats.summary().items():
                assert final[key] == value

    def test_merged_timeseries_sums_counters(self):
        results = run_many(_specs(), jobs=2)
        merged = merge_timeseries([r.timeseries for r in results])
        assert merged.final["uncorrectable"] == sum(
            r.timeseries.final["uncorrectable"] for r in results
        )
        assert merged.final["scrub_reads"] == sum(
            r.timeseries.final["scrub_reads"] for r in results
        )
