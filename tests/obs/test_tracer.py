"""Tracer unit tests: schema validation, sinks, and deterministic merge."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    EVENT_FIELDS,
    NULL_TRACER,
    JsonlTracer,
    RecordingTracer,
    Tracer,
    merge_traces,
    write_trace,
)


class TestSchema:
    def test_unknown_event_raises(self):
        tracer = RecordingTracer()
        with pytest.raises(ValueError, match="unknown trace event"):
            tracer.emit("nonsense", 0.0)

    def test_missing_required_field_raises(self):
        tracer = RecordingTracer()
        with pytest.raises(ValueError, match="missing fields"):
            tracer.emit("uncorrectable", 0.0, region=3)  # no count

    def test_extra_fields_allowed(self):
        tracer = RecordingTracer()
        tracer.emit("retire", 1.0, region=0, count=2, note="extra")
        assert tracer.events[0]["note"] == "extra"

    def test_every_event_type_emittable(self):
        tracer = RecordingTracer()
        for name, fields in EVENT_FIELDS.items():
            tracer.emit(name, 0.0, **{field: 0 for field in fields})
        assert len(tracer.events) == len(EVENT_FIELDS)


class TestRecordingTracer:
    def test_records_event_time_seq_and_payload(self):
        tracer = RecordingTracer()
        tracer.emit("uncorrectable", 10.0, region=1, count=3)
        tracer.emit("retire", 20.0, region=1, count=1)
        assert tracer.events == [
            {"event": "uncorrectable", "t": 10.0, "seq": 0, "region": 1, "count": 3},
            {"event": "retire", "t": 20.0, "seq": 1, "region": 1, "count": 1},
        ]

    def test_null_tracer_is_disabled_noop(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, Tracer)
        NULL_TRACER.emit("not even validated", -1.0)  # must not raise


class TestJsonlSinks:
    def test_jsonl_tracer_streams_valid_lines(self):
        buffer = io.StringIO()
        with JsonlTracer(buffer) as tracer:
            tracer.emit("uncorrectable", 5.0, region=0, count=1)
            tracer.emit("retire", 6.0, region=0, count=1)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["event"] == "uncorrectable"

    def test_jsonl_tracer_path_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.emit("retire", 1.0, region=2, count=4)
        record = json.loads(path.read_text())
        assert record == {"event": "retire", "t": 1.0, "seq": 0, "region": 2, "count": 4}

    def test_write_trace_roundtrip(self, tmp_path):
        tracer = RecordingTracer()
        tracer.emit("uncorrectable", 1.0, region=0, count=1)
        tracer.emit("retire", 2.0, region=0, count=1)
        path = tmp_path / "trace.jsonl"
        assert write_trace(tracer.events, path) == 2
        back = [json.loads(line) for line in path.read_text().splitlines()]
        assert back == tracer.events


class TestMergeTraces:
    def test_merge_orders_by_time_then_run_then_seq(self):
        a = RecordingTracer()
        a.emit("retire", 5.0, region=0, count=1)
        a.emit("retire", 5.0, region=0, count=2)
        b = RecordingTracer()
        b.emit("retire", 1.0, region=1, count=1)
        b.emit("retire", 5.0, region=1, count=3)
        merged = merge_traces([a.events, b.events])
        assert [(e["t"], e["run"], e["seq"]) for e in merged] == [
            (1.0, 1, 0),
            (5.0, 0, 0),
            (5.0, 0, 1),
            (5.0, 1, 1),
        ]

    def test_merge_skips_none_and_empty(self):
        tracer = RecordingTracer()
        tracer.emit("retire", 1.0, region=0, count=1)
        merged = merge_traces([None, [], tracer.events])
        assert len(merged) == 1
        assert merged[0]["run"] == 2

    def test_merge_independent_of_input_placement(self):
        a = RecordingTracer()
        b = RecordingTracer()
        for t in (1.0, 3.0):
            a.emit("retire", t, region=0, count=1)
        for t in (2.0, 3.0):
            b.emit("retire", t, region=1, count=1)
        once = merge_traces([a.events, b.events])
        again = merge_traces([list(a.events), list(b.events)])
        assert once == again
