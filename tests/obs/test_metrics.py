"""Metrics registry unit tests: instruments, groups, snapshots."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import units
from repro.core import basic_scrub
from repro.obs import Counter, CounterGroup, Gauge, Histogram, MetricsRegistry
from repro.sim import SimulationConfig, run_experiment


class TestInstruments:
    def test_counter_increments_and_rejects_negative(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.reset()
        assert counter.value == 0

    def test_gauge_sets(self):
        gauge = Gauge()
        gauge.set(3)
        assert gauge.value == 3.0
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_observe_caps_overflow(self):
        histogram = Histogram(4)
        histogram.observe([0, 1, 1, 3, 7, 100])
        assert histogram.to_list() == [1, 2, 0, 3]

    def test_histogram_set_from_copies(self):
        histogram = Histogram(3)
        source = np.array([1, 2, 3], dtype=np.int64)
        histogram.set_from(source)
        source[0] = 99
        assert histogram.to_list() == [1, 2, 3]
        with pytest.raises(ValueError):
            histogram.set_from(np.zeros(5, dtype=np.int64))


class TestCounterGroup:
    def test_plain_dict_semantics(self):
        group = CounterGroup(("memory", "disk"))
        group["memory"] += 2
        assert group == {"memory": 2, "disk": 0}
        assert dict(group) == {"memory": 2, "disk": 0}
        group.reset()
        assert group == {"memory": 0, "disk": 0}


class TestRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", 4) is registry.histogram("h", 4)
        with pytest.raises(ValueError):
            registry.histogram("h", 8)

    def test_snapshot_flattens_groups_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(3)
        registry.gauge("temp").set(2.5)
        registry.group("cache", ("hit", "miss"))["hit"] += 1
        registry.histogram("errs", 2).observe([0, 1, 1])
        snapshot = registry.snapshot()
        assert snapshot == {
            "runs": 3,
            "temp": 2.5,
            "cache.hit": 1,
            "cache.miss": 0,
            "errs": [1, 2],
        }
        json.dumps(snapshot)  # JSON-serializable as-is

    def test_observe_stats_mirrors_summary_energy_and_histogram(self):
        result = run_experiment(
            basic_scrub(interval=units.HOUR),
            SimulationConfig(
                num_lines=256, region_size=64, horizon=units.DAY, endurance=None
            ),
        )
        registry = MetricsRegistry()
        registry.observe_stats(result.stats)
        snapshot = registry.snapshot()
        for key, value in result.stats.summary().items():
            assert snapshot[key] == value
        for stage, joules in result.stats.energy_breakdown().items():
            assert snapshot[f"energy.{stage}"] == joules
        assert snapshot["observed_errors"] == [
            int(v) for v in result.stats.error_histogram
        ]
