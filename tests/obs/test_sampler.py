"""Sampler unit tests: grid timing, TimeSeries round-trip, merging."""

from __future__ import annotations

import json

import pytest

from repro.obs import PeriodicSampler, TimeSeries, merge_timeseries


def _collect_time(t: float) -> dict:
    return {"value": t * 2}


class TestPeriodicSampler:
    def test_advance_samples_strictly_before_now(self):
        sampler = PeriodicSampler(10.0, _collect_time)
        sampler.advance_to(25.0)
        assert [s["t"] for s in sampler.series.samples] == [10.0, 20.0]
        # A sample due exactly at `now` waits for the event at `now` to land.
        sampler.advance_to(30.0)
        assert [s["t"] for s in sampler.series.samples] == [10.0, 20.0]
        sampler.advance_to(30.0 + 1e-9)
        assert [s["t"] for s in sampler.series.samples] == [10.0, 20.0, 30.0]

    def test_finalize_drains_grid_and_samples_at_horizon(self):
        sampler = PeriodicSampler(10.0, _collect_time)
        sampler.advance_to(5.0)
        series = sampler.finalize(35.0)
        assert [s["t"] for s in series.samples] == [10.0, 20.0, 30.0, 35.0]
        assert series.final == {"t": 35.0, "value": 70.0}

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicSampler(0.0, _collect_time)


class TestTimeSeries:
    def test_roundtrip_and_column(self):
        series = TimeSeries()
        series.append(1.0, {"a": 1, "h": [0, 1]})
        series.append(2.0, {"a": 2})
        blob = json.loads(series.to_json())
        back = TimeSeries.from_dict(blob)
        assert back == series
        assert series.column("a") == [1, 2]
        assert series.column("h") == [[0, 1], None]

    def test_final_raises_on_empty(self):
        with pytest.raises(IndexError):
            TimeSeries().final

    def test_write(self, tmp_path):
        series = TimeSeries()
        series.append(1.0, {"a": 1})
        path = tmp_path / "ts.json"
        series.write(path)
        assert TimeSeries.from_dict(json.loads(path.read_text())) == series


class TestMergeTimeseries:
    def _series(self, scale: int) -> TimeSeries:
        series = TimeSeries()
        series.append(1.0, {"ue": scale, "hist": [scale, 0]})
        series.append(2.0, {"ue": 2 * scale, "hist": [0, scale]})
        return series

    def test_samplewise_sum(self):
        merged = merge_timeseries([self._series(1), self._series(10), None])
        assert merged.samples == [
            {"t": 1.0, "ue": 11, "hist": [11, 0]},
            {"t": 2.0, "ue": 22, "hist": [0, 11]},
        ]

    def test_empty_input(self):
        assert merge_timeseries([None, TimeSeries()]).samples == []

    def test_length_mismatch_raises(self):
        short = TimeSeries()
        short.append(1.0, {"ue": 1})
        with pytest.raises(ValueError, match="different lengths"):
            merge_timeseries([self._series(1), short])

    def test_time_mismatch_raises(self):
        shifted = TimeSeries()
        shifted.append(1.5, {"ue": 1})
        shifted.append(2.0, {"ue": 1})
        with pytest.raises(ValueError, match="different times"):
            merge_timeseries([self._series(1), shifted])
