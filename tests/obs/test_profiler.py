"""Profiler unit tests: spans, the null profiler, and report merging."""

from __future__ import annotations

from repro.obs import NULL_PROFILER, NullProfiler, Profiler, merge_profiles


class TestProfiler:
    def test_spans_accumulate_calls_and_seconds(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.span("visit"):
                pass
        report = profiler.report()
        assert report["visit"]["calls"] == 3
        assert report["visit"]["seconds"] >= 0.0

    def test_nested_spans_are_inclusive(self):
        profiler = Profiler()
        with profiler.span("outer"):
            with profiler.span("inner"):
                pass
        report = profiler.report()
        assert report["outer"]["seconds"] >= report["inner"]["seconds"]

    def test_add_direct(self):
        profiler = Profiler()
        profiler.add("phase", 1.5)
        profiler.add("phase", 0.5)
        assert profiler.report() == {"phase": {"calls": 2, "seconds": 2.0}}

    def test_reset(self):
        profiler = Profiler()
        profiler.add("phase", 1.0)
        profiler.reset()
        assert profiler.report() == {}


class TestNullProfiler:
    def test_disabled_and_accumulates_nothing(self):
        assert NULL_PROFILER.enabled is False
        assert isinstance(NULL_PROFILER, NullProfiler)
        with NULL_PROFILER.span("anything"):
            pass
        NULL_PROFILER.add("anything", 1.0)
        assert NULL_PROFILER.report() == {}

    def test_span_is_shared_noop(self):
        assert NULL_PROFILER.span("a") is NULL_PROFILER.span("b")


class TestMergeProfiles:
    def test_sums_phasewise_and_skips_none(self):
        a = {"visit": {"calls": 2, "seconds": 1.0}}
        b = {"visit": {"calls": 1, "seconds": 0.5}, "demand": {"calls": 4, "seconds": 2.0}}
        merged = merge_profiles([a, None, b, {}])
        assert merged == {
            "visit": {"calls": 3, "seconds": 1.5},
            "demand": {"calls": 4, "seconds": 2.0},
        }

    def test_empty(self):
        assert merge_profiles([]) == {}
