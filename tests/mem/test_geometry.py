"""Memory geometry: address-mapping bijections."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.geometry import Coordinates, Interleaving, MemoryGeometry

SMALL = MemoryGeometry(
    channels=2, banks_per_channel=4, rows_per_bank=8, lines_per_row=4
)
INTERLEAVED = MemoryGeometry(
    channels=2,
    banks_per_channel=4,
    rows_per_bank=8,
    lines_per_row=4,
    interleaving=Interleaving.LINE_INTERLEAVED,
)


class TestShape:
    def test_counts(self):
        assert SMALL.num_banks == 8
        assert SMALL.lines_per_bank == 32
        assert SMALL.num_lines == 256

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MemoryGeometry(channels=0)


@pytest.mark.parametrize("geometry", [SMALL, INTERLEAVED], ids=["row", "interleaved"])
class TestBijection:
    def test_roundtrip_every_line(self, geometry):
        seen = set()
        for line in range(geometry.num_lines):
            coords = geometry.coordinates(line)
            assert geometry.line_index(coords) == line
            seen.add((coords.channel, coords.bank, coords.row, coords.column))
        assert len(seen) == geometry.num_lines

    def test_out_of_range_line(self, geometry):
        with pytest.raises(ValueError):
            geometry.coordinates(geometry.num_lines)
        with pytest.raises(ValueError):
            geometry.coordinates(-1)

    def test_out_of_range_coords(self, geometry):
        with pytest.raises(ValueError):
            geometry.line_index(Coordinates(99, 0, 0, 0))


class TestInterleavingShapes:
    def test_row_major_regions_contiguous(self):
        banks = [SMALL.bank_of(line) for line in range(SMALL.num_lines)]
        # Bank changes exactly every lines_per_bank addresses.
        for i, bank in enumerate(banks):
            assert bank == i // SMALL.lines_per_bank

    def test_line_interleaved_rotates(self):
        banks = [INTERLEAVED.bank_of(line) for line in range(16)]
        assert banks[:8] == list(range(8))
        assert banks[8:16] == list(range(8))

    def test_same_population_different_layout(self):
        row_banks = sorted(SMALL.bank_of(i) for i in range(SMALL.num_lines))
        int_banks = sorted(INTERLEAVED.bank_of(i) for i in range(SMALL.num_lines))
        assert row_banks == int_banks


@given(
    channels=st.integers(1, 4),
    banks=st.integers(1, 8),
    rows=st.integers(1, 16),
    cols=st.integers(1, 16),
    interleaving=st.sampled_from(list(Interleaving)),
)
@settings(max_examples=30, deadline=None)
def test_property_bijection_random_geometries(channels, banks, rows, cols, interleaving):
    geometry = MemoryGeometry(
        channels=channels,
        banks_per_channel=banks,
        rows_per_bank=rows,
        lines_per_row=cols,
        interleaving=interleaving,
    )
    stride = max(1, geometry.num_lines // 64)
    for line in range(0, geometry.num_lines, stride):
        assert geometry.line_index(geometry.coordinates(line)) == line
