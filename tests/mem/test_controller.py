"""Bank queue model: latency, priority, and scrub interference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mem.controller import BankQueueModel, ScrubTraffic
from repro.mem.geometry import MemoryGeometry
from repro.params import EnergySpec, LineSpec
from repro.pcm.energy import OperationCosts
from repro.workloads.generators import uniform_rates
from repro.workloads.trace import AccessTrace, Op, Request, trace_from_rates

GEOMETRY = MemoryGeometry(channels=1, banks_per_channel=2, rows_per_bank=4, lines_per_row=4)
COSTS = OperationCosts.for_line(EnergySpec(), LineSpec(), ecc_bits=64, ecc_strength=1)


def make_model() -> BankQueueModel:
    return BankQueueModel(GEOMETRY, COSTS)


class TestScrubTraffic:
    def test_from_stats(self):
        traffic = ScrubTraffic.from_stats(
            scrub_reads=3600, scrub_writes=360, horizon=3600.0, num_banks=2
        )
        assert traffic.reads_per_second == pytest.approx(0.5)
        assert traffic.writes_per_second == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScrubTraffic(-1.0, 0.0)
        with pytest.raises(ValueError):
            ScrubTraffic.from_stats(1, 1, 0.0, 2)


class TestQueueing:
    def test_idle_bank_has_service_time_latency(self, rng):
        trace = AccessTrace(
            [Request(0.1, Op.READ, 0), Request(0.5, Op.WRITE, 16)], GEOMETRY.num_lines
        )
        report = make_model().simulate(trace, ScrubTraffic(0, 0), 1.0, rng)
        assert report.mean_read_latency == pytest.approx(COSTS.read_latency)
        assert report.mean_write_latency == pytest.approx(COSTS.write_latency)

    def test_read_behind_write_queues(self, rng):
        # Same bank: read arrives mid-write and waits for it.
        trace = AccessTrace(
            [Request(0.0, Op.WRITE, 0), Request(1e-7, Op.READ, 1)],
            GEOMETRY.num_lines,
        )
        report = make_model().simulate(trace, ScrubTraffic(0, 0), 1.0, rng)
        expected = (COSTS.write_latency - 1e-7) + COSTS.read_latency
        assert report.mean_read_latency == pytest.approx(expected)

    def test_different_banks_do_not_interfere(self, rng):
        trace = AccessTrace(
            [Request(0.0, Op.WRITE, 0), Request(1e-7, Op.READ, 16)],
            GEOMETRY.num_lines,
        )
        report = make_model().simulate(trace, ScrubTraffic(0, 0), 1.0, rng)
        assert report.mean_read_latency == pytest.approx(COSTS.read_latency)

    def test_scrub_yields_to_demand(self):
        # Heavy scrub load must hurt demand latency far less than an equal
        # demand load would, because scrub has low priority.
        rng = np.random.default_rng(3)
        rates = uniform_rates(GEOMETRY.num_lines, total_write_rate=200.0)
        trace = trace_from_rates(rates, duration=1.0, rng=rng)
        light = make_model().simulate(
            trace, ScrubTraffic(0, 0), 1.0, np.random.default_rng(4)
        )
        heavy = make_model().simulate(
            trace,
            ScrubTraffic(reads_per_second=50_000, writes_per_second=5_000),
            1.0,
            np.random.default_rng(4),
        )
        assert heavy.scrub_share > 0.005
        # Demand latency should grow, but stay within a small multiple:
        # each demand op waits for at most one in-flight scrub op.
        assert heavy.mean_read_latency < 10 * light.mean_read_latency

    def test_utilization_accounts_all_service(self, rng):
        rates = uniform_rates(GEOMETRY.num_lines, total_write_rate=100.0)
        trace = trace_from_rates(rates, duration=1.0, rng=np.random.default_rng(5))
        scrub = ScrubTraffic(reads_per_second=1000, writes_per_second=100)
        report = make_model().simulate(trace, scrub, 1.0, rng)
        assert 0 < report.scrub_share < report.bank_utilization < 1

    def test_invalid_duration(self, rng):
        trace = AccessTrace([], GEOMETRY.num_lines)
        with pytest.raises(ValueError):
            make_model().simulate(trace, ScrubTraffic(0, 0), 0.0, rng)
