"""Start-Gap wear leveling: translation invariants and effectiveness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.wearlevel import (
    StartGapLeveler,
    simulate_wear,
    wear_ratio,
)


class TestTranslation:
    def test_initial_mapping_is_identity(self):
        leveler = StartGapLeveler(16)
        assert leveler.mapping_snapshot().tolist() == list(range(16))

    def test_mapping_always_bijective(self):
        leveler = StartGapLeveler(16, gap_interval=1)
        rng = np.random.default_rng(0)
        for __ in range(500):
            leveler.record_write(int(rng.integers(0, 16)))
            snapshot = leveler.mapping_snapshot()
            assert len(set(snapshot.tolist())) == 16
            assert leveler.gap not in snapshot

    def test_translate_many_matches_scalar(self):
        leveler = StartGapLeveler(32, gap_interval=3)
        rng = np.random.default_rng(1)
        for __ in range(200):
            leveler.record_write(int(rng.integers(0, 32)))
        logical = np.arange(32)
        vector = leveler.translate_many(logical)
        assert vector.tolist() == [leveler.translate(i) for i in range(32)]

    def test_out_of_range_rejected(self):
        leveler = StartGapLeveler(8)
        with pytest.raises(ValueError):
            leveler.translate(8)
        with pytest.raises(ValueError):
            leveler.record_write(-1)
        with pytest.raises(ValueError):
            leveler.translate_many(np.array([9]))

    @given(
        num_lines=st.integers(2, 64),
        gap_interval=st.integers(1, 7),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bijection_under_random_traffic(
        self, num_lines, gap_interval, seed
    ):
        leveler = StartGapLeveler(num_lines, gap_interval)
        rng = np.random.default_rng(seed)
        for __ in range(3 * num_lines * gap_interval):
            leveler.record_write(int(rng.integers(0, num_lines)))
        snapshot = leveler.mapping_snapshot()
        assert len(set(snapshot.tolist())) == num_lines
        assert (snapshot >= 0).all() and (snapshot < leveler.num_physical).all()


class TestGapMechanics:
    def test_gap_moves_every_interval(self):
        leveler = StartGapLeveler(8, gap_interval=4)
        moves = [leveler.record_write(0) for __ in range(12)]
        fired = [m for m in moves if m is not None]
        assert len(fired) == 3
        assert leveler.move_writes == 3

    def test_gap_walks_downward_and_wraps(self):
        leveler = StartGapLeveler(4, gap_interval=1)
        positions = [leveler.gap]
        for __ in range(10):
            leveler.record_write(0)
            positions.append(leveler.gap)
        # Starts at 4 and decrements; the wrap resets to the top and the
        # same trigger immediately moves it down one (4 -> 3).
        assert positions[:6] == [4, 3, 2, 1, 0, 3]
        assert leveler.start >= 1  # a full rotation bumped start

    def test_write_overhead_approximates_inverse_interval(self):
        leveler = StartGapLeveler(64, gap_interval=10)
        for __ in range(1000):
            leveler.record_write(0)
        assert leveler.write_overhead == pytest.approx(0.1, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            StartGapLeveler(1)
        with pytest.raises(ValueError):
            StartGapLeveler(8, gap_interval=0)


class TestEffectiveness:
    def test_hotspot_spread_across_device(self):
        # A single-address write storm: without leveling one slot takes
        # every write; with Start-Gap the max/mean ratio collapses.
        num_lines = 64
        storm = np.zeros(100_000, dtype=np.int64)  # all writes to line 0
        unleveled = simulate_wear(num_lines, storm, gap_interval=None)
        leveled = simulate_wear(num_lines, storm, gap_interval=10)
        assert wear_ratio(unleveled) == pytest.approx(num_lines)
        assert wear_ratio(leveled) < 6.0

    def test_uniform_traffic_unharmed(self):
        rng = np.random.default_rng(2)
        traffic = rng.integers(0, 64, 50_000)
        unleveled = simulate_wear(64, traffic, gap_interval=None)
        leveled = simulate_wear(64, traffic, gap_interval=10)
        assert wear_ratio(leveled) < wear_ratio(unleveled) * 1.2

    def test_wear_conserved_plus_overhead(self):
        storm = np.zeros(10_000, dtype=np.int64)
        leveled = simulate_wear(16, storm, gap_interval=10)
        assert leveled.sum() == 10_000 + 10_000 // 10

    def test_empty_stream(self):
        wear = simulate_wear(8, np.array([], dtype=np.int64), gap_interval=5)
        assert wear.sum() == 0
        assert wear_ratio(wear) == 1.0
