"""Spare-pool management and its engine integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core import threshold_scrub
from repro.core.stats import ScrubStats
from repro.mem.sparing import SparePool
from repro.params import CellSpec, EnduranceSpec, EnergySpec, LineSpec
from repro.pcm.endurance import EnduranceModel
from repro.pcm.energy import OperationCosts
from repro.sim.analytic import CrossingDistribution
from repro.sim.population import LinePopulation, PopulationEngine
from repro.sim.rng import RngStreams
from repro.workloads.generators import uniform_rates


class TestSparePool:
    def test_grant_until_exhausted(self):
        pool = SparePool(num_regions=2, spares_per_region=3)
        assert pool.request(0, 2) == 2
        assert pool.available(0) == 1
        assert pool.request(0, 5) == 1
        assert pool.refused == 4
        assert pool.available(0) == 0
        # Region 1 untouched.
        assert pool.available(1) == 3

    def test_report(self):
        pool = SparePool(2, 2)
        pool.request(0, 2)
        pool.request(0, 1)
        report = pool.report()
        assert report.exhausted_regions == 1
        assert report.total_used == 2
        assert report.refused == 1

    def test_zero_provision(self):
        pool = SparePool(1, 0)
        assert pool.request(0, 4) == 0
        assert pool.refused == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SparePool(0, 1)
        with pytest.raises(ValueError):
            SparePool(1, -1)
        pool = SparePool(1, 1)
        with pytest.raises(ValueError):
            pool.request(5, 1)
        with pytest.raises(ValueError):
            pool.request(0, -1)


class TestEngineIntegration:
    def run_with_pool(self, spares_per_region):
        distribution = CrossingDistribution(CellSpec())
        endurance = EnduranceModel(EnduranceSpec(mean_writes=25, sigma_log10=0.0))
        population = LinePopulation(
            num_lines=128,
            cells_per_line=256,
            distribution=distribution,
            rng=np.random.default_rng(5),
            endurance=endurance,
        )
        costs = OperationCosts.for_line(EnergySpec(), LineSpec(), 40, 4)
        stats = ScrubStats(costs=costs)
        pool = SparePool(num_regions=2, spares_per_region=spares_per_region)
        PopulationEngine(
            population=population,
            policy=threshold_scrub(units.HOUR, 4, threshold=1),
            stats=stats,
            streams=RngStreams(6),
            horizon=10 * units.DAY,
            region_size=64,
            rates=uniform_rates(128, 128 / units.HOUR),
            retire_hard_limit=4,
            spare_pool=pool,
        ).simulate()
        return stats, pool.report()

    def test_generous_pool_never_refuses(self):
        stats, report = self.run_with_pool(spares_per_region=10_000)
        assert stats.retired > 0
        assert report.refused == 0
        assert report.exhausted_regions == 0

    def test_exhausted_pool_caps_retirement(self):
        generous_stats, __ = self.run_with_pool(spares_per_region=10_000)
        stats, report = self.run_with_pool(spares_per_region=2)
        assert stats.retired <= 2 * 2
        assert report.exhausted_regions == 2
        assert report.refused > 0
        # With retirement blocked, broken lines keep erroring: strictly
        # more UEs than the generously-spared run.
        assert stats.uncorrectable > generous_stats.uncorrectable

    def test_pool_region_mismatch_rejected(self):
        distribution = CrossingDistribution(CellSpec())
        population = LinePopulation(
            num_lines=128,
            cells_per_line=256,
            distribution=distribution,
            rng=np.random.default_rng(1),
        )
        costs = OperationCosts.for_line(EnergySpec(), LineSpec(), 40, 4)
        with pytest.raises(ValueError):
            PopulationEngine(
                population=population,
                policy=threshold_scrub(units.HOUR, 4),
                stats=ScrubStats(costs=costs),
                streams=RngStreams(1),
                horizon=units.DAY,
                region_size=64,
                spare_pool=SparePool(num_regions=5, spares_per_region=1),
            )
