"""Parameter dataclasses: defaults and validation."""

from __future__ import annotations

import pytest

from repro.params import (
    CellSpec,
    DriftParams,
    EnduranceSpec,
    LevelBand,
    LineSpec,
    replace,
)


class TestLevelBand:
    def test_valid_band(self):
        band = LevelBand("L1", 1, 4.0, 4.2, 3.6, 4.6)
        assert band.program_center == pytest.approx(4.1)
        assert band.guard_band_up == pytest.approx(0.4)

    def test_program_band_must_nest_in_read_band(self):
        with pytest.raises(ValueError):
            LevelBand("bad", 0, 3.0, 5.0, 3.5, 4.5)


class TestCellSpec:
    def test_default_is_two_bit_mlc(self):
        spec = CellSpec()
        assert spec.num_levels == 4
        assert spec.bits_per_cell == 2

    def test_level_count_must_match_drift(self):
        spec = CellSpec()
        with pytest.raises(ValueError):
            replace(spec, drift=spec.drift[:2])

    def test_symbols_must_be_sequential(self):
        spec = CellSpec()
        shuffled = (spec.levels[1], spec.levels[0], spec.levels[2], spec.levels[3])
        with pytest.raises(ValueError):
            replace(spec, levels=shuffled)

    def test_overlapping_read_bands_rejected(self):
        spec = CellSpec()
        bad = replace(spec.levels[0], read_high=5.0)
        with pytest.raises(ValueError):
            replace(spec, levels=(bad, *spec.levels[1:]))

    def test_minimum_two_levels(self):
        spec = CellSpec()
        with pytest.raises(ValueError):
            replace(spec, levels=spec.levels[:1], drift=spec.drift[:1])

    def test_negative_program_sigma_rejected(self):
        with pytest.raises(ValueError):
            replace(CellSpec(), program_sigma=-0.1)

    def test_spec_is_hashable(self):
        # The runner memoizes crossing distributions keyed on the spec.
        assert hash(CellSpec()) == hash(CellSpec())


class TestDriftParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftParams(-0.1, 0.0)
        with pytest.raises(ValueError):
            DriftParams(0.1, -0.1)

    def test_defaults_increase_with_level(self):
        spec = CellSpec()
        means = [d.nu_mean for d in spec.drift]
        assert means == sorted(means)


class TestLineSpec:
    def test_default_64_byte_line(self):
        line = LineSpec()
        assert line.data_bits == 512
        assert line.data_cells == 256

    def test_bits_must_fill_cells(self):
        # 3 bytes = 24 bits: fine for 2-bit cells; 1 byte also fine.
        assert LineSpec(data_bytes=3).data_cells == 12

    def test_endurance_defaults(self):
        spec = EnduranceSpec()
        assert spec.mean_writes == 1e8
