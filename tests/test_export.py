"""Result export formats."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro import units
from repro.analysis.export import (
    RESULT_COLUMNS,
    results_to_csv,
    results_to_jsonl,
    write_results,
    write_timeseries,
)
from repro.core import basic_scrub
from repro.obs import ObsConfig, TimeSeries
from repro.sim import SimulationConfig, run_experiment

CONFIG = SimulationConfig(
    num_lines=256, region_size=64, horizon=units.DAY, endurance=None
)


@pytest.fixture(scope="module")
def results():
    return [
        run_experiment(basic_scrub(units.HOUR), CONFIG),
        run_experiment(basic_scrub(2 * units.HOUR), CONFIG),
    ]


@pytest.fixture(scope="module")
def sampled_results():
    config = SimulationConfig(
        num_lines=256,
        region_size=64,
        horizon=units.DAY,
        endurance=None,
        obs=ObsConfig(sample_every=units.DAY / 4, profile=True),
    )
    return [
        run_experiment(basic_scrub(units.HOUR), config),
        run_experiment(basic_scrub(2 * units.HOUR), config),
    ]


class TestCsv:
    def test_header_and_rows(self, results):
        text = results_to_csv(results)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert set(rows[0]) == set(RESULT_COLUMNS)
        assert rows[0]["policy"] == "basic(secded)"
        assert float(rows[0]["scrub_energy_j"]) > 0

    def test_empty_is_just_header(self):
        text = results_to_csv([])
        assert len(text.strip().splitlines()) == 1


class TestJsonl:
    def test_roundtrips(self, results):
        lines = results_to_jsonl(results).splitlines()
        assert len(lines) == 2
        blob = json.loads(lines[0])
        assert blob["policy"] == "basic(secded)"
        assert "energy_breakdown_j" in blob
        assert "final_state" in blob


class TestToDict:
    def test_json_roundtrip_preserves_everything(self, results):
        blob = json.loads(results[0].to_json())
        assert blob == results[0].to_dict()  # JSON-serializable as-is

    def test_stable_keys_across_runs(self, results):
        assert list(results[0].to_dict()) == list(results[1].to_dict())

    def test_final_state_and_summary_present(self, results):
        blob = results[0].to_dict()
        for key in ("stuck_cells", "hard_mismatch_cells", "mean_writes_per_line"):
            assert key in blob["final_state"]
        for key, value in results[0].stats.summary().items():
            assert blob[key] == value

    def test_spare_counters_exported_when_provisioned(self):
        config = SimulationConfig(
            num_lines=256,
            region_size=64,
            horizon=units.DAY,
            endurance=None,
            spares_per_region=4,
        )
        blob = run_experiment(basic_scrub(units.HOUR), config).to_dict()
        for key in ("spares_used", "spare_refusals", "spare_exhausted_regions"):
            assert key in blob["final_state"]

    def test_telemetry_keys_only_when_collected(self, results, sampled_results):
        assert "timeseries" not in results[0].to_dict()
        assert "profile" not in results[0].to_dict()
        blob = sampled_results[0].to_dict()
        assert TimeSeries.from_dict(blob["timeseries"]) == sampled_results[0].timeseries
        assert blob["profile"] == sampled_results[0].profile
        json.dumps(blob)


class TestWriteTimeseries:
    def test_writes_runs_and_merged_view(self, sampled_results, tmp_path):
        path = tmp_path / "ts.json"
        write_timeseries(path, ["1h", "2h"], sampled_results)
        blob = json.loads(path.read_text())
        assert [run["label"] for run in blob["runs"]] == ["1h", "2h"]
        merged = TimeSeries.from_dict(blob["merged"])
        assert merged.final["scrub_reads"] == sum(
            r.timeseries.final["scrub_reads"] for r in sampled_results
        )

    def test_label_count_mismatch_raises(self, sampled_results, tmp_path):
        with pytest.raises(ValueError, match="one label per result"):
            write_timeseries(tmp_path / "ts.json", ["only-one"], sampled_results)

    def test_unsampled_run_raises(self, results, tmp_path):
        with pytest.raises(ValueError, match="without time series"):
            write_timeseries(tmp_path / "ts.json", ["a", "b"], results)


class TestWrite:
    def test_csv_file(self, results, tmp_path):
        path = tmp_path / "runs.csv"
        write_results(path, results)
        assert path.read_text().startswith("policy,")

    def test_jsonl_file(self, results, tmp_path):
        path = tmp_path / "runs.jsonl"
        write_results(path, results)
        assert len(path.read_text().strip().splitlines()) == 2

    def test_unknown_suffix(self, results, tmp_path):
        with pytest.raises(ValueError):
            write_results(tmp_path / "runs.parquet", results)
