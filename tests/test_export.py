"""Result export formats."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro import units
from repro.analysis.export import (
    RESULT_COLUMNS,
    results_to_csv,
    results_to_jsonl,
    write_results,
)
from repro.core import basic_scrub
from repro.sim import SimulationConfig, run_experiment

CONFIG = SimulationConfig(
    num_lines=256, region_size=64, horizon=units.DAY, endurance=None
)


@pytest.fixture(scope="module")
def results():
    return [
        run_experiment(basic_scrub(units.HOUR), CONFIG),
        run_experiment(basic_scrub(2 * units.HOUR), CONFIG),
    ]


class TestCsv:
    def test_header_and_rows(self, results):
        text = results_to_csv(results)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert set(rows[0]) == set(RESULT_COLUMNS)
        assert rows[0]["policy"] == "basic(secded)"
        assert float(rows[0]["scrub_energy_j"]) > 0

    def test_empty_is_just_header(self):
        text = results_to_csv([])
        assert len(text.strip().splitlines()) == 1


class TestJsonl:
    def test_roundtrips(self, results):
        lines = results_to_jsonl(results).splitlines()
        assert len(lines) == 2
        blob = json.loads(lines[0])
        assert blob["policy"] == "basic(secded)"
        assert "energy_breakdown_j" in blob
        assert "final_state" in blob


class TestWrite:
    def test_csv_file(self, results, tmp_path):
        path = tmp_path / "runs.csv"
        write_results(path, results)
        assert path.read_text().startswith("policy,")

    def test_jsonl_file(self, results, tmp_path):
        path = tmp_path / "runs.jsonl"
        write_results(path, results)
        assert len(path.read_text().strip().splitlines()) == 2

    def test_unknown_suffix(self, results, tmp_path):
        with pytest.raises(ValueError):
            write_results(tmp_path / "runs.parquet", results)
