"""Lease protocol: exclusive claims, heartbeats, stale detection."""

from __future__ import annotations

import json
import os
import time

from repro.service.leases import (
    Lease,
    break_if_stale,
    read_lease,
    refresh,
    release,
    try_acquire,
)


class TestAcquire:
    def test_exclusive_create_single_winner(self, tmp_path):
        path = tmp_path / "shard-0000.json"
        first = try_acquire(path, "w1")
        assert first is not None and first.worker == "w1"
        assert try_acquire(path, "w2") is None
        assert read_lease(path).worker == "w1"

    def test_release_frees_the_slot(self, tmp_path):
        path = tmp_path / "lease.json"
        assert try_acquire(path, "w1") is not None
        release(path)
        assert try_acquire(path, "w2") is not None

    def test_release_is_idempotent(self, tmp_path):
        release(tmp_path / "never-existed.json")


class TestHeartbeat:
    def test_refresh_bumps_heartbeat_atomically(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = try_acquire(path, "w1")
        time.sleep(0.01)
        refreshed = refresh(path, lease)
        assert refreshed.heartbeat > lease.heartbeat
        on_disk = read_lease(path)
        assert on_disk.heartbeat == refreshed.heartbeat
        assert on_disk.acquired == lease.acquired
        # No temp litter from the atomic rewrite.
        assert [p for p in tmp_path.iterdir()] == [path]

    def test_corrupt_lease_reads_as_none(self, tmp_path):
        path = tmp_path / "lease.json"
        path.write_text("{torn")
        assert read_lease(path) is None


class TestStaleness:
    def test_fresh_lease_not_stale(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = try_acquire(path, "w1")
        assert not lease.is_stale(timeout=60.0)
        assert break_if_stale(path, timeout=60.0) is None
        assert path.exists()

    def test_expired_heartbeat_is_stale(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = try_acquire(path, "w1")
        stale = Lease(
            worker=lease.worker,
            pid=lease.pid,
            host=lease.host,
            acquired=lease.acquired - 100.0,
            heartbeat=lease.heartbeat - 100.0,
        )
        path.write_text(json.dumps(stale.to_dict()))
        broken = break_if_stale(path, timeout=30.0)
        assert broken is not None and broken.worker == "w1"
        assert not path.exists()

    def test_dead_pid_on_this_host_is_stale(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = try_acquire(path, "w1")
        # A pid from a process that no longer exists: fork and reap one.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        dead = Lease(
            worker="w1",
            pid=pid,
            host=lease.host,
            acquired=lease.acquired,
            heartbeat=lease.heartbeat,
        )
        path.write_text(json.dumps(dead.to_dict()))
        assert break_if_stale(path, timeout=1e9) is not None

    def test_other_host_judged_by_heartbeat_only(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = try_acquire(path, "w1")
        remote = Lease(
            worker="w1",
            pid=1,  # pid 1 exists here, but the lease claims another host
            host="some-other-host",
            acquired=lease.acquired,
            heartbeat=lease.heartbeat,
        )
        path.write_text(json.dumps(remote.to_dict()))
        assert break_if_stale(path, timeout=1e9) is None
