"""Lease protocol: exclusive claims, heartbeats, stale detection."""

from __future__ import annotations

import json
import os
import time

from repro.service.leases import (
    Lease,
    break_if_stale,
    read_lease,
    refresh,
    release,
    try_acquire,
)


class TestAcquire:
    def test_exclusive_create_single_winner(self, tmp_path):
        path = tmp_path / "shard-0000.json"
        first = try_acquire(path, "w1")
        assert first is not None and first.worker == "w1"
        assert try_acquire(path, "w2") is None
        assert read_lease(path).worker == "w1"

    def test_release_frees_the_slot(self, tmp_path):
        path = tmp_path / "lease.json"
        assert try_acquire(path, "w1") is not None
        release(path)
        assert try_acquire(path, "w2") is not None

    def test_release_is_idempotent(self, tmp_path):
        release(tmp_path / "never-existed.json")


class TestHeartbeat:
    def test_refresh_bumps_heartbeat_atomically(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = try_acquire(path, "w1")
        time.sleep(0.01)
        refreshed = refresh(path, lease)
        assert refreshed.heartbeat > lease.heartbeat
        on_disk = read_lease(path)
        assert on_disk.heartbeat == refreshed.heartbeat
        assert on_disk.acquired == lease.acquired
        # No temp litter from the atomic rewrite.
        assert [p for p in tmp_path.iterdir()] == [path]

    def test_corrupt_lease_reads_as_none(self, tmp_path):
        path = tmp_path / "lease.json"
        path.write_text("{torn")
        assert read_lease(path) is None


class TestStaleness:
    def test_fresh_lease_not_stale(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = try_acquire(path, "w1")
        assert not lease.is_stale(timeout=60.0)
        assert break_if_stale(path, timeout=60.0) is None
        assert path.exists()

    def test_expired_heartbeat_is_stale(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = try_acquire(path, "w1")
        stale = Lease(
            worker=lease.worker,
            pid=lease.pid,
            host=lease.host,
            acquired=lease.acquired - 100.0,
            heartbeat=lease.heartbeat - 100.0,
        )
        path.write_text(json.dumps(stale.to_dict()))
        broken = break_if_stale(path, timeout=30.0)
        assert broken is not None and broken.worker == "w1"
        assert not path.exists()

    def test_dead_pid_on_this_host_is_stale(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = try_acquire(path, "w1")
        # A pid from a process that no longer exists: fork and reap one.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        dead = Lease(
            worker="w1",
            pid=pid,
            host=lease.host,
            acquired=lease.acquired,
            heartbeat=lease.heartbeat,
        )
        path.write_text(json.dumps(dead.to_dict()))
        assert break_if_stale(path, timeout=1e9) is not None

    def test_other_host_judged_by_heartbeat_only(self, tmp_path):
        path = tmp_path / "lease.json"
        lease = try_acquire(path, "w1")
        remote = Lease(
            worker="w1",
            pid=1,  # pid 1 exists here, but the lease claims another host
            host="some-other-host",
            acquired=lease.acquired,
            heartbeat=lease.heartbeat,
        )
        path.write_text(json.dumps(remote.to_dict()))
        assert break_if_stale(path, timeout=1e9) is None


class TestMultiHostSmoke:
    """Two faked hostnames sharing one campaign directory.

    The lease protocol's cross-host story, end to end: a remote peer's
    *fresh* lease is respected no matter what its pid means locally
    (remote liveness is judged by heartbeat age only), a remote peer's
    *stale* lease is stolen, and a worker on a second host drains a
    campaign a first-host worker died holding.
    """

    @staticmethod
    def _set_host(monkeypatch, name: str) -> None:
        from repro.service import leases

        monkeypatch.setattr(leases.socket, "gethostname", lambda: name)

    def test_claim_heartbeat_steal_across_hosts(self, tmp_path, monkeypatch):
        path = tmp_path / "shard-0000.lease"

        self._set_host(monkeypatch, "host-a")
        lease_a = try_acquire(path, "worker-a")
        assert lease_a is not None and lease_a.host == "host-a"

        # host-b sees an exclusive claim it cannot take or break: the
        # heartbeat is fresh, and host-a's pid (alive or dead *there*)
        # must not be consulted here.
        self._set_host(monkeypatch, "host-b")
        assert try_acquire(path, "worker-b") is None
        assert break_if_stale(path, timeout=60.0) is None

        # A heartbeat refresh from host-a keeps the lease alive.
        self._set_host(monkeypatch, "host-a")
        refreshed = refresh(path, lease_a)
        assert refreshed.heartbeat >= lease_a.heartbeat

        # Once the heartbeat goes stale, host-b steals and takes over.
        self._set_host(monkeypatch, "host-b")
        time.sleep(0.05)
        broken = break_if_stale(path, timeout=0.01)
        assert broken is not None and broken.worker == "worker-a"
        lease_b = try_acquire(path, "worker-b")
        assert lease_b is not None and lease_b.host == "host-b"

    def test_dead_pid_only_matters_on_its_own_host(self, tmp_path, monkeypatch):
        path = tmp_path / "lease.json"
        self._set_host(monkeypatch, "host-a")
        lease = try_acquire(path, "worker-a")
        dead = Lease(
            worker="worker-a",
            pid=2_000_000_000,  # no such pid anywhere
            host="host-a",
            acquired=lease.acquired,
            heartbeat=lease.heartbeat,
        )
        path.write_text(json.dumps(dead.to_dict()))
        # Same host: the dead pid makes the lease immediately stale.
        assert break_if_stale(path, timeout=1e9) is not None
        # Remote host: the same lease is fresh (heartbeat age only).
        path.write_text(json.dumps(dead.to_dict()))
        self._set_host(monkeypatch, "host-b")
        assert break_if_stale(path, timeout=1e9) is None

    def test_second_host_drains_a_dead_first_host_campaign(
        self, tmp_path, monkeypatch
    ):
        from repro import units
        from repro.fleet import FleetSpec, run_campaign
        from repro.service import run_worker, submit_campaign
        from repro.service.jobs import load_campaign
        from repro.sim.config import SimulationConfig

        spec = FleetSpec(
            name="two-host-smoke",
            devices=4,
            policy="threshold",
            policy_kwargs={"interval": 4 * units.HOUR, "strength": 3,
                           "threshold": 1},
            base_config=SimulationConfig(
                num_lines=64, region_size=64, horizon=units.DAY,
                seed=2012, endurance=None,
            ),
        )
        root = tmp_path / "campaign"
        submit_campaign(spec, root, shards=2)
        campaign = load_campaign(root)

        # "host-a"'s worker claimed shard 0 and died mid-heartbeat: its
        # lease file survives with an aging heartbeat and a pid that is
        # meaningless on any other machine.
        self._set_host(monkeypatch, "host-a")
        first = campaign.shards[0]
        stale = try_acquire(campaign.lease_path(first), "worker-a")
        assert stale is not None

        # "host-b" polls, respects the fresh lease, then steals it once
        # the heartbeat exceeds the timeout and finishes everything.
        self._set_host(monkeypatch, "host-b")
        time.sleep(0.05)
        outcome = run_worker(
            root, worker_id="worker-b", lease_timeout=0.01,
        )
        assert outcome["devices_executed"] == spec.devices
        assert sorted(outcome["shards"]) == [0, 1]

        from repro.service import final_report

        assert final_report(root).to_json() == (
            run_campaign(spec, jobs=1).report.to_json()
        )
