"""Campaign directory format: submit, load, and integrity guards."""

from __future__ import annotations

import json

import pytest

from repro import units
from repro.fleet import FleetSpec, Lot, LotParameter
from repro.service import ServiceError, load_campaign, submit_campaign
from repro.sim.config import SimulationConfig


def make_spec(devices=6, seed=2012) -> FleetSpec:
    return FleetSpec(
        name="jobs-test",
        devices=devices,
        policy="threshold",
        policy_kwargs={"interval": 4 * units.HOUR, "strength": 3, "threshold": 1},
        base_config=SimulationConfig(
            num_lines=256, region_size=256, horizon=units.DAY, seed=seed,
            endurance=None,
        ),
        lots=(
            Lot(name="a", weight=2, nu_mu_scale=LotParameter(1.0, 0.05, low=0.0)),
            Lot(name="b", weight=1),
        ),
    )


class TestSubmit:
    def test_creates_layout(self, tmp_path):
        campaign = submit_campaign(make_spec(), tmp_path / "camp", shards=3)
        root = campaign.root
        assert (root / "spec.json").exists()
        assert (root / "plan.json").exists()
        assert (root / "shards").is_dir()
        assert (root / "leases").is_dir()
        assert (root / "snapshots").is_dir()
        assert len(campaign.shards) == 3

    def test_resubmit_same_spec_is_idempotent(self, tmp_path):
        root = tmp_path / "camp"
        first = submit_campaign(make_spec(), root, shards=3)
        second = submit_campaign(make_spec(), root, shards=3)
        assert second.spec_hash == first.spec_hash
        assert second.shards == first.shards

    def test_different_spec_refused(self, tmp_path):
        root = tmp_path / "camp"
        submit_campaign(make_spec(seed=1), root, shards=2)
        with pytest.raises(ServiceError, match="refusing to overwrite"):
            submit_campaign(make_spec(seed=2), root, shards=2)

    def test_different_shard_count_refused(self, tmp_path):
        root = tmp_path / "camp"
        submit_campaign(make_spec(), root, shards=2)
        with pytest.raises(ServiceError, match="shards"):
            submit_campaign(make_spec(), root, shards=3)


class TestLoad:
    def test_round_trip(self, tmp_path):
        submitted = submit_campaign(make_spec(), tmp_path / "camp", shards=3)
        loaded = load_campaign(tmp_path / "camp")
        assert loaded.spec_hash == submitted.spec_hash
        assert loaded.shards == submitted.shards
        assert loaded.spec.content_hash() == submitted.spec_hash

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="not a campaign directory"):
            load_campaign(tmp_path / "nope")

    def test_edited_spec_rejected(self, tmp_path):
        root = tmp_path / "camp"
        submit_campaign(make_spec(), root, shards=2)
        payload = json.loads((root / "spec.json").read_text())
        payload["spec"]["devices"] = 99
        (root / "spec.json").write_text(json.dumps(payload))
        with pytest.raises(ServiceError, match="hash"):
            load_campaign(root)

    def test_fingerprint_names_campaign_and_device(self, tmp_path):
        campaign = submit_campaign(make_spec(), tmp_path / "camp", shards=2)
        fingerprint = campaign.device_fingerprint(3)
        assert fingerprint == f"{campaign.spec_hash}/device-3"
