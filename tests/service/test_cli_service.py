"""The ``pcm-scrub submit|serve|status|watch|repair`` surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fleet import run_campaign
from repro.fleet.spec import FleetSpec
from repro.service import submit_campaign
from repro.service.jobs import load_campaign
from repro.service.worker import run_shard


@pytest.fixture
def spec_path(tmp_path):
    spec = {
        "version": 1,
        "name": "cli-service",
        "devices": 4,
        "policy": "threshold",
        "policy_kwargs": {"interval": 14400.0, "strength": 3, "threshold": 1},
        "capacity_gib_per_device": 16.0,
        "config": {
            "num_lines": 256,
            "region_size": 256,
            "horizon_days": 1.0,
            "seed": 2012,
            "endurance": None,
        },
        "lots": [
            {"name": "a", "weight": 1},
            {
                "name": "b",
                "weight": 1,
                "nu_sigma_scale": {"mean": 1.2, "spread": 0.05, "low": 0.0},
            },
        ],
        "demand_write_rate": 0.05,
    }
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(spec))
    return path


class TestSubmitServe:
    def test_submit_then_serve_matches_batch_fleet(
        self, spec_path, tmp_path, capsys
    ):
        root = tmp_path / "camp"
        assert main(["submit", str(spec_path), str(root), "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "Campaign submitted" in out

        report_path = tmp_path / "report.json"
        assert main([
            "serve", str(root), "--workers", "2",
            "--json", str(report_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Serve summary" in out
        assert "Fleet reliability" in out

        served = json.loads(report_path.read_text())
        spec = FleetSpec.from_file(spec_path)
        batch = run_campaign(spec, jobs=1).report.to_dict()
        assert served == batch

    def test_resubmit_is_idempotent(self, spec_path, tmp_path, capsys):
        root = tmp_path / "camp"
        assert main(["submit", str(spec_path), str(root), "--shards", "2"]) == 0
        assert main(["submit", str(spec_path), str(root), "--shards", "2"]) == 0


class TestStatusWatchRepair:
    def _submitted(self, spec_path, tmp_path):
        root = tmp_path / "camp"
        spec = FleetSpec.from_file(spec_path)
        submit_campaign(spec, root, shards=2)
        return root

    def test_status_empty_campaign(self, spec_path, tmp_path, capsys):
        root = self._submitted(spec_path, tmp_path)
        status_path = tmp_path / "status.json"
        assert main(["status", str(root), "--json", str(status_path)]) == 0
        out = capsys.readouterr().out
        assert "0/4 devices" in out
        assert "queued" in out
        payload = json.loads(status_path.read_text())
        assert payload["devices_done"] == 0
        assert payload["report"] is None

    def test_status_partial_report(self, spec_path, tmp_path, capsys):
        root = self._submitted(spec_path, tmp_path)
        campaign = load_campaign(root)
        run_shard(campaign, campaign.shards[0])
        assert main(["status", str(root)]) == 0
        out = capsys.readouterr().out
        assert "partial report over" in out

    def test_watch_finished_campaign(self, spec_path, tmp_path, capsys):
        root = self._submitted(spec_path, tmp_path)
        campaign = load_campaign(root)
        for shard in campaign.shards:
            run_shard(campaign, shard)
        assert main(["watch", str(root), "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "4/4 devices" in out
        assert "Fleet reliability" in out

    def test_watch_timeout_exits_nonzero(self, spec_path, tmp_path, capsys):
        root = self._submitted(spec_path, tmp_path)
        assert main([
            "watch", str(root), "--interval", "0.01", "--timeout", "0.05",
        ]) == 1
        assert "not finished" in capsys.readouterr().out

    def test_repair_reports_nothing_to_do(self, spec_path, tmp_path, capsys):
        root = self._submitted(spec_path, tmp_path)
        assert main(["repair", str(root)]) == 0
        assert "nothing to repair" in capsys.readouterr().out


class TestFleetUntil:
    def test_until_then_resume_round_trip(self, spec_path, tmp_path, capsys):
        journal = tmp_path / "journal.jsonl"
        assert main([
            "fleet", str(spec_path), "--checkpoint", str(journal),
            "--until", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "checkpointed" in out.lower()

        report_path = tmp_path / "report.json"
        assert main([
            "fleet", str(spec_path), "--checkpoint", str(journal),
            "--resume", "--json", str(report_path),
        ]) == 0
        resumed = json.loads(report_path.read_text())
        spec = FleetSpec.from_file(spec_path)
        batch = run_campaign(spec, jobs=1).report.to_dict()
        assert resumed == batch
