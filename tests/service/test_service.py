"""Service-scope crash/resume identity and streaming-report guarantees.

The acceptance contract: for worker pools of 1, 2, and 4, and under
SIGKILL of a worker mid-shard or mid-device (between engine events, via
the EngineSnapshot file), a repaired and resumed campaign produces a
FleetReport byte-identical to the uninterrupted batch ``run_campaign``
of the same spec - and streaming ``status`` views are monotone, with the
final streamed report equal to the batch one.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro import units
from repro.fleet import FleetSpec, Lot, LotParameter, run_campaign
from repro.service import (
    campaign_status,
    final_report,
    repair_campaign,
    run_worker,
    serve_campaign,
    submit_campaign,
    watch_campaign,
)
from repro.service.jobs import load_campaign
from repro.service.supervisor import _worker_main
from repro.service.worker import run_shard
from repro.sim.config import SimulationConfig


def make_spec(devices=6, horizon=units.DAY, fast_forward=True) -> FleetSpec:
    return FleetSpec(
        name="svc-test",
        devices=devices,
        policy="threshold",
        policy_kwargs={"interval": 4 * units.HOUR, "strength": 3, "threshold": 1},
        base_config=SimulationConfig(
            num_lines=256,
            region_size=256,
            horizon=horizon,
            seed=2012,
            endurance=None,
            fast_forward=fast_forward,
        ),
        lots=(
            Lot(name="a", weight=2, nu_mu_scale=LotParameter(1.0, 0.05, low=0.0)),
            Lot(name="b", weight=1, nu_sigma_scale=LotParameter(1.2, 0.1, low=0.0)),
        ),
        demand_write_rate=0.05,
    )


def batch_report_json(spec) -> str:
    return run_campaign(spec, jobs=1).report.to_json()


class TestPoolIdentity:
    def test_single_worker_matches_batch(self, tmp_path):
        spec = make_spec()
        root = tmp_path / "camp"
        submit_campaign(spec, root, shards=3)
        run_worker(root, worker_id="solo")
        assert final_report(root).to_json() == batch_report_json(spec)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_pool_matches_batch(self, tmp_path, workers):
        spec = make_spec()
        root = tmp_path / "camp"
        submit_campaign(spec, root, shards=workers * 2)
        summary = serve_campaign(root, workers=workers, lease_timeout=10.0)
        assert summary["finished"]
        assert final_report(root).to_json() == batch_report_json(spec)


def _wait_for(predicate, timeout=120.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestKillResumeIdentity:
    def _spawn_victim(self, root, snapshot_budget):
        context = multiprocessing.get_context("spawn")
        process = context.Process(
            target=_worker_main,
            args=(str(root), "victim", 30.0, snapshot_budget),
        )
        process.start()
        return process

    def test_sigkill_mid_shard_then_repair_resume(self, tmp_path):
        spec = make_spec()
        root = tmp_path / "camp"
        submit_campaign(spec, root, shards=2)
        campaign = load_campaign(root)

        victim = self._spawn_victim(root, snapshot_budget=256)

        def journal_has_progress():
            records = {}
            for shard in campaign.shards:
                try:
                    records.update(campaign.shard_records(shard))
                except Exception:
                    pass
            return 0 < len(records) < spec.devices

        assert _wait_for(journal_has_progress), "victim made no journal progress"
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        assert victim.exitcode == -signal.SIGKILL

        repaired = repair_campaign(root, lease_timeout=0.0)
        run_worker(root, worker_id="successor", lease_timeout=0.5)
        assert final_report(root).to_json() == batch_report_json(spec)
        # The kill landed mid-shard, so the lease was genuinely orphaned
        # unless the victim died between shards - tolerate both, but the
        # report identity above must hold regardless.
        assert isinstance(repaired["leases_broken"], list)

    def test_sigkill_mid_device_resumes_from_snapshot(self, tmp_path):
        # Long horizon + no fast-forward: hundreds of engine events per
        # device, so with a small snapshot budget the "snapshot exists,
        # device unfinished" window spans nearly the whole device run and
        # the SIGKILL lands mid-device.  A worker can still finish a
        # device between our glob and the kill, so retry with a fresh
        # victim if the snapshot turns out to be a completed device's.
        spec = make_spec(horizon=30 * units.DAY, fast_forward=False)
        root = tmp_path / "camp"
        submit_campaign(spec, root, shards=3)
        campaign = load_campaign(root)
        snapshots = campaign.snapshots_dir

        def journaled():
            done = {}
            for shard in campaign.shards:
                try:
                    done.update(campaign.shard_records(shard))
                except Exception:
                    pass
            return done

        killed_mid_device = False
        for _ in range(3):
            victim = self._spawn_victim(root, snapshot_budget=8)
            appeared = _wait_for(
                lambda: any(snapshots.glob("device-*.npz")), interval=0.001
            )
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            assert appeared, "no mid-device snapshot appeared to kill against"
            orphans = {
                int(path.stem.split("-", 1)[1])
                for path in snapshots.glob("device-*.npz")
            }
            if orphans - set(journaled()):
                killed_mid_device = True
                break
            repair_campaign(root, lease_timeout=0.0)
        assert killed_mid_device, "kill never landed mid-device in 3 tries"

        repair_campaign(root, lease_timeout=0.0)
        run_worker(root, worker_id="successor", lease_timeout=0.5,
                   snapshot_budget=8)
        assert final_report(root).to_json() == batch_report_json(spec)


class TestStreaming:
    def test_status_is_monotone_and_final_equals_batch(self, tmp_path):
        spec = make_spec()
        root = tmp_path / "camp"
        submit_campaign(spec, root, shards=3)
        campaign = load_campaign(root)

        seen = [campaign_status(root)]
        assert seen[0]["devices_done"] == 0 and seen[0]["report"] is None
        for shard in campaign.shards:
            run_shard(campaign, shard)
            seen.append(campaign_status(root))

        counts = [status["devices_done"] for status in seen]
        assert counts == sorted(counts), "devices_done must be monotone"
        report_devices = [
            status["report"]["devices"]
            for status in seen
            if status["report"] is not None
        ]
        assert report_devices == sorted(report_devices)

        final = seen[-1]
        assert final["finished"]
        assert json.dumps(final["report"], indent=2) == batch_report_json(spec)

    def test_watch_returns_final_status(self, tmp_path):
        spec = make_spec(devices=3)
        root = tmp_path / "camp"
        submit_campaign(spec, root, shards=1)
        campaign = load_campaign(root)
        run_shard(campaign, campaign.shards[0])
        polls = []
        status = watch_campaign(
            root, interval=0.01, timeout=30.0, on_status=polls.append
        )
        assert status["finished"] and len(polls) >= 1

    def test_watch_timeout_raises(self, tmp_path):
        spec = make_spec(devices=3)
        root = tmp_path / "camp"
        submit_campaign(spec, root, shards=1)
        with pytest.raises(TimeoutError):
            watch_campaign(root, interval=0.01, timeout=0.05)


class TestRepair:
    def test_sweeps_snapshots_of_journaled_devices(self, tmp_path):
        spec = make_spec(devices=3)
        root = tmp_path / "camp"
        submit_campaign(spec, root, shards=1)
        campaign = load_campaign(root)
        run_shard(campaign, campaign.shards[0])
        # Fabricate the kill-between-append-and-unlink leftover.
        orphan = campaign.snapshot_path(0)
        orphan.write_bytes(b"stale snapshot bytes")
        outcome = repair_campaign(root)
        assert outcome["snapshots_swept"] == [0]
        assert not orphan.exists()

    def test_fresh_lease_survives_repair(self, tmp_path):
        from repro.service.leases import try_acquire

        spec = make_spec(devices=3)
        root = tmp_path / "camp"
        campaign = submit_campaign(spec, root, shards=1)
        lease_path = campaign.lease_path(campaign.shards[0])
        assert try_acquire(lease_path, "alive") is not None
        outcome = repair_campaign(root, lease_timeout=60.0)
        assert outcome["leases_broken"] == []
        assert lease_path.exists()
