"""Shard planner: deterministic, apportionment-stable tilings."""

from __future__ import annotations

import pytest

from repro.service import CampaignShard, plan_shards


class TestPlanShards:
    @pytest.mark.parametrize(
        "devices,shards", [(1, 1), (6, 3), (7, 3), (100, 7), (5, 5), (64, 16)]
    )
    def test_tiles_exactly(self, devices, shards):
        plan = plan_shards(devices, shards)
        covered = [index for shard in plan for index in shard.indices]
        assert covered == list(range(devices))

    @pytest.mark.parametrize("devices,shards", [(7, 3), (100, 7), (13, 4)])
    def test_sizes_differ_by_at_most_one(self, devices, shards):
        sizes = [shard.count for shard in plan_shards(devices, shards)]
        assert max(sizes) - min(sizes) <= 1
        assert all(size > 0 for size in sizes)

    def test_deterministic(self):
        assert plan_shards(100, 7) == plan_shards(100, 7)

    def test_more_shards_than_devices_clamps(self):
        plan = plan_shards(3, 10)
        assert len(plan) == 3
        assert [shard.count for shard in plan] == [1, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(0, 1)
        with pytest.raises(ValueError):
            plan_shards(4, 0)
        with pytest.raises(ValueError):
            CampaignShard(shard_id=0, start=3, stop=3)

    def test_round_trip(self):
        shard = CampaignShard(shard_id=2, start=4, stop=9)
        assert CampaignShard.from_dict(shard.to_dict()) == shard
        assert shard.name == "shard-0002"
