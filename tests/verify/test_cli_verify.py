"""The ``repro verify`` subcommand: tables, JSON artifact, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.stats import ScrubStats


@pytest.fixture(scope="module")
def quick_run(tmp_path_factory):
    """One clean --quick run shared by the passing-path assertions."""
    out = tmp_path_factory.mktemp("verify") / "report.json"
    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main(
            ["--jobs", "2", "verify", "--quick", "--json", str(out)]
        )
    return code, stdout.getvalue(), out


class TestPassingRun:
    def test_exit_zero(self, quick_run):
        code, _, _ = quick_run
        assert code == 0

    def test_tables_cover_all_pillars(self, quick_run):
        _, output, _ = quick_run
        assert "Invariant sweep" in output
        assert "Metamorphic properties" in output
        assert "Model equivalence" in output
        assert "verification: PASSED" in output
        assert "FAIL" not in output

    def test_json_artifact(self, quick_run):
        _, _, path = quick_run
        payload = json.loads(path.read_text())
        assert payload["passed"] is True
        assert payload["invariants"]["passed"] is True
        assert payload["metamorphic"]["passed"] is True
        assert payload["equivalence"]["passed"] is True
        assert len(payload["equivalence"]["rows"]) >= 8


class TestBrokenRun:
    def test_exit_nonzero_when_invariant_broken(
        self, monkeypatch, capsys, tmp_path
    ):
        # Corrupt the ledger under the harness: the invariant sweep must
        # catch it and flip the exit code.  jobs=1 keeps every simulation
        # in-process so the monkeypatch reaches it.
        monkeypatch.setattr(
            ScrubStats, "record_scrub_writes", lambda self, count: None
        )
        out = tmp_path / "report.json"
        code = main(
            ["--jobs", "1", "verify", "--quick", "--json", str(out)]
        )
        assert code == 1
        output = capsys.readouterr().out
        assert "FAIL: scrub_write_count" in output
        assert "verification: FAILED" in output
        payload = json.loads(out.read_text())
        assert payload["passed"] is False
        failures = [
            case for case in payload["invariants"]["cases"]
            if not case["passed"]
        ]
        assert failures
        assert failures[0]["violation"]["invariant"] == "scrub_write_count"
