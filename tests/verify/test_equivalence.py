"""Statistical cross-validation: MC vs the analytic and renewal models.

The full analytic grid (3 intervals x 3 ECC strengths, 16384 lines) is
the PR's acceptance bar and runs here in full - single-visit runs are
cheap.  The renewal finite-horizon grid runs in quick mode; the full
grid is exercised by ``repro verify`` in CI.
"""

from __future__ import annotations

import math

from repro.verify.equivalence import (
    BATCH_REL_FLOOR,
    BATCH_REL_Z,
    RENEWAL_REL_Z,
    SURROGATE_REL_TOL,
    EquivalenceReport,
    EquivalenceRow,
    _batch_band,
    _relative_band,
    analytic_equivalence,
    analytic_grid,
    batch_equivalence,
    renewal_equivalence,
    renewal_grid,
    surrogate_equivalence,
)


class TestGrids:
    def test_full_analytic_grid_is_three_by_three(self):
        grid = analytic_grid()
        assert len(grid) == 9
        assert len({interval for interval, _ in grid}) == 3
        assert len({t for _, t in grid}) == 3

    def test_quick_grids_are_subsets(self):
        assert set(analytic_grid(quick=True)) <= set(analytic_grid())
        assert set(renewal_grid(quick=True)) <= set(renewal_grid())


class TestAnalytic:
    def test_full_grid_passes(self):
        report = analytic_equivalence(jobs=2)
        assert len(report.rows) == 9
        assert report.passed, [row.to_dict() for row in report.failures]

    def test_expectations_span_decades(self):
        # The grid must probe both the rare-event and the bulk regimes;
        # a band that only ever sees big counts can hide small-p bugs.
        report = analytic_equivalence(jobs=2)
        expectations = [row.expected for row in report.rows]
        assert min(expectations) < 50
        assert max(expectations) > 2000


class TestRenewal:
    def test_quick_grid_passes_both_metrics(self):
        report = renewal_equivalence(jobs=2, quick=True)
        assert report.passed, [row.to_dict() for row in report.failures]
        metrics = {row.metric for row in report.rows}
        assert metrics == {"uncorrectable", "scrub_writes"}

    def test_relative_band_is_pure_poisson_width(self):
        # The finite-horizon correction removed the 12% transient floor:
        # the band must be exactly z / sqrt(E) wide at *every* scale, with
        # no silent fallback to a floor for large expectations.
        for expected in (1e2, 1e4, 1e9):
            rel = RENEWAL_REL_Z / math.sqrt(expected)
            assert _relative_band(expected) == (
                expected * (1 - rel),
                expected * (1 + rel),
            )
        assert _relative_band(0.0) == (0.0, 0.0)

    def test_no_floor_constant_survives(self):
        import repro.verify.equivalence as eq

        assert not hasattr(eq, "RENEWAL_REL_FLOOR")


class TestBatchVsScalar:
    def test_quick_grid_passes_both_metrics(self):
        report = batch_equivalence(jobs=2, quick=True)
        assert report.passed, [row.to_dict() for row in report.failures]
        assert {row.check for row in report.rows} == {"batch_vs_scalar"}
        assert {row.metric for row in report.rows} == {
            "uncorrectable",
            "scrub_writes",
        }
        # Non-vacuous: the scalar expectation must be a real count.
        assert all(row.expected > 0 for row in report.rows)

    def test_batch_band_has_documented_floor(self):
        import math

        low, high = _batch_band(1e9)  # sampling term negligible
        assert low == 1e9 * (1 - BATCH_REL_FLOOR)
        assert high == 1e9 * (1 + BATCH_REL_FLOOR)
        assert _batch_band(0.0) == (0.0, 0.0)
        # Small expectations widen by the paired-sample sqrt(2) term.
        expected = 100.0
        rel = BATCH_REL_Z * math.sqrt(2.0 / expected)
        assert _batch_band(expected) == (
            expected * (1 - rel),
            expected * (1 + rel),
        )


class TestSurrogateBatch:
    def test_quick_law_passes_kernel_and_screen(self):
        report = surrogate_equivalence(jobs=2, quick=True)
        assert report.passed, [row.to_dict() for row in report.failures]
        assert {row.check for row in report.rows} == {"surrogate_batch"}
        metrics = {row.metric for row in report.rows}
        assert metrics == {
            "expected_ue",
            "expected_writes",
            "no_ue_probability",
            "classification_mismatches",
        }
        # The mismatch row is exact-match (zero-width band at zero).
        mismatch = next(
            row for row in report.rows
            if row.metric == "classification_mismatches"
        )
        assert (mismatch.low, mismatch.high) == (0.0, 0.0)
        assert mismatch.observed == 0.0
        # Relative-gap rows sit far inside the documented tolerance.
        for row in report.rows:
            if row.metric != "classification_mismatches":
                assert row.high == SURROGATE_REL_TOL
                assert row.observed < SURROGATE_REL_TOL

    def test_tolerance_is_documented_constant(self):
        assert SURROGATE_REL_TOL == 1e-9


class TestReport:
    def test_failures_and_serialization(self):
        ok = EquivalenceRow(
            check="analytic", label="x", metric="uncorrectable",
            observed=10.0, expected=11.0, low=5.0, high=20.0, passed=True,
        )
        bad = EquivalenceRow(
            check="renewal", label="y", metric="scrub_writes",
            observed=0.0, expected=100.0, low=88.0, high=112.0, passed=False,
        )
        report = EquivalenceReport(rows=(ok, bad))
        assert not report.passed
        assert report.failures == (bad,)
        payload = report.to_dict()
        assert payload["passed"] is False
        assert payload["rows"][1]["metric"] == "scrub_writes"
