"""Tests for the repro.verify subsystem."""
