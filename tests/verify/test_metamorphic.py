"""Metamorphic property suite: the ordering laws and their reporting."""

from __future__ import annotations

from repro.verify.metamorphic import (
    MetamorphicReport,
    PropertyResult,
    batch_identity,
    drift_monotonicity,
    ecc_monotonicity,
    fast_forward_identity,
    horizon_superadditivity,
    interval_monotonicity,
    partial_writeback_economy,
    run_metamorphic,
    threshold_monotonicity,
)


class TestProperties:
    def test_interval_monotonicity_holds(self):
        result = interval_monotonicity(quick=True)
        assert result.passed
        values = [case.value for case in result.cases]
        assert values == sorted(values)

    def test_ecc_monotonicity_holds_for_both_families(self):
        results = ecc_monotonicity(quick=True)
        assert {r.name for r in results} == {
            "ecc_monotonicity_bch", "ecc_monotonicity_rs"
        }
        for result in results:
            assert result.passed
            values = [case.value for case in result.cases]
            assert values == sorted(values, reverse=True)

    def test_drift_monotonicity_holds(self):
        result = drift_monotonicity(quick=True)
        assert result.passed
        values = [case.value for case in result.cases]
        assert values == sorted(values)

    def test_horizon_superadditivity_holds(self):
        result = horizon_superadditivity(quick=True)
        assert result.passed
        short, doubled = (case.value for case in result.cases)
        assert doubled >= 2 * short * 0.98

    def test_threshold_monotonicity_holds_for_writes_and_energy(self):
        results = threshold_monotonicity(quick=True)
        assert {r.name for r in results} == {
            "threshold_write_monotonicity", "threshold_energy_monotonicity"
        }
        for result in results:
            assert result.passed
            values = [case.value for case in result.cases]
            assert values == sorted(values, reverse=True)
            # The laws are non-vacuous: a laxer threshold actually
            # deferred work on this configuration.
            assert values[0] > values[-1]

    def test_partial_writeback_economy_holds(self):
        result = partial_writeback_economy(quick=True)
        assert result.passed
        full, partial = (case.value for case in result.cases)
        assert partial <= full
        assert partial > 0.0

    def test_fast_forward_identity_holds_and_engages(self):
        result = fast_forward_identity(quick=True)
        assert result.passed
        assert all(case.value == 1.0 for case in result.cases)
        # Non-vacuous: every policy's fast-forward run actually skipped
        # visits (the label carries the skipped count).
        assert all("(skipped 0)" not in case.label for case in result.cases)

    def test_batch_identity_holds_across_domains(self):
        result = batch_identity(quick=True)
        assert result.passed
        assert all(case.value == 1.0 for case in result.cases)
        # The quick set still spans both dispatch modes: static-interval
        # policies (round mode) and a busy single-region detector run.
        labels = [case.label for case in result.cases]
        assert any("multi-idle" in label for label in labels)
        assert any("single-busy" in label for label in labels)


class TestReport:
    def test_suite_aggregates_and_passes(self):
        report = run_metamorphic(quick=True)
        assert report.passed
        assert not report.failures
        assert len(report.results) == 10
        payload = report.to_dict()
        assert payload["passed"] is True
        assert all("cases" in entry for entry in payload["results"])

    def test_failure_surfaces_in_report(self):
        good = PropertyResult(
            name="good", relation="x", cases=(), passed=True
        )
        bad = PropertyResult(name="bad", relation="x", cases=(), passed=False)
        report = MetamorphicReport(results=(good, bad))
        assert not report.passed
        assert report.failures == (bad,)
