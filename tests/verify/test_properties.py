"""Hypothesis properties for the verification substrate itself.

The invariant/metamorphic/equivalence pillars assume two things about the
physics layer that deserve their own property tests: the crossing-time
CDF behaves like a distribution function (monotone, bounded, worsening
with temperature), and named RNG streams are independent and
deterministic (paired-seed comparisons in the metamorphic suite depend
on exactly this).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.params import CellSpec
from repro.pcm.drift import DriftModel
from repro.sim.analytic import CrossingDistribution
from repro.sim.rng import RngStreams

DIST = CrossingDistribution(CellSpec(), temperature_k=300.0)
MODEL_COOL = DriftModel(CellSpec(), temperature_k=300.0)
MODEL_HOT = DriftModel(CellSpec(), temperature_k=330.0)

times = st.floats(min_value=1.0, max_value=1e7, allow_nan=False)


class TestDriftCdf:
    @given(t1=times, t2=times)
    def test_cdf_monotone_in_time(self, t1, t2):
        lo, hi = sorted((t1, t2))
        assert DIST.cdf(lo) <= DIST.cdf(hi) + 1e-12

    @given(t=times)
    def test_cdf_bounded(self, t):
        value = DIST.cdf(t)
        assert 0.0 <= value <= 1.0

    @given(t=times, symbol=st.integers(1, 3))
    def test_error_probability_monotone_in_temperature(self, t, symbol):
        # Arrhenius acceleration: a hotter part is never more reliable.
        cool = MODEL_COOL.error_probability(symbol, t)
        hot = MODEL_HOT.error_probability(symbol, t)
        assert hot >= cool - 1e-12

    @given(q=st.floats(min_value=1e-6, max_value=0.1))
    def test_quantile_inverts_cdf(self, q):
        # The crossing distribution is defective (most cells never cross
        # within any horizon), so only quantiles inside its total mass
        # (~0.2 at 300K) are finite and invertible.
        t = DIST.quantile(q)
        assert np.isfinite(t)
        assert DIST.cdf(t) >= q - 1e-9


class TestRngStreams:
    @given(seed=st.integers(0, 2**63 - 1))
    def test_streams_deterministic_per_seed(self, seed):
        a = RngStreams(seed).get("population").random(8)
        b = RngStreams(seed).get("population").random(8)
        assert np.array_equal(a, b)

    @given(seed=st.integers(0, 2**63 - 1))
    def test_named_streams_differ(self, seed):
        streams = RngStreams(seed)
        a = streams.get("population").random(8)
        b = streams.get("workload").random(8)
        assert not np.array_equal(a, b)

    @given(seed=st.integers(0, 2**63 - 1), name=st.text(min_size=1, max_size=16))
    def test_spawn_children_differ_from_parent(self, seed, name):
        parent = RngStreams(seed)
        child = parent.spawn(name)
        a = parent.get(name).random(4)
        b = child.get(name).random(4)
        assert not np.array_equal(a, b)
