"""Runtime invariant checking: clean runs, bit-identity, and detection.

Three families of tests:

* armed runs over every engine path finish without violations;
* arming the verifier never changes a single simulated number;
* corrupting the stats ledger mid-run (monkeypatched recorders) trips the
  matching invariant with a structured, JSON-able violation.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import units
from repro.core import partial_scrub, threshold_scrub
from repro.core.stats import ScrubStats
from repro.obs import ObsConfig
from repro.params import EnduranceSpec
from repro.sim import SimulationConfig, run_experiment
from repro.verify import (
    NULL_VERIFIER,
    InvariantChecker,
    InvariantViolation,
    Verifier,
    VerifyConfig,
)
from repro.verify.harness import invariant_cases, run_invariants
from repro.workloads import uniform_rates

ARMED = VerifyConfig(invariants=True)

BASE = SimulationConfig(
    num_lines=1024,
    region_size=256,
    horizon=2 * units.DAY,
    endurance=None,
    verify=ARMED,
)


def small_run(policy=None, config=BASE, rates=None):
    if policy is None:
        policy = threshold_scrub(interval=2 * units.HOUR)
    return run_experiment(policy, config, rates)


class TestConfig:
    def test_disabled_by_default(self):
        assert not VerifyConfig().enabled
        assert ARMED.enabled

    def test_validation(self):
        with pytest.raises(ValueError, match="check_every"):
            VerifyConfig(check_every=0)
        with pytest.raises(ValueError, match="energy_rtol"):
            VerifyConfig(energy_rtol=-1.0)


class TestNullVerifier:
    def test_is_disabled_and_inert(self):
        assert not NULL_VERIFIER.enabled
        NULL_VERIFIER.check_visit(anything=1, at_all=2)
        NULL_VERIFIER.note_refresh(writes=3, ues=1)
        NULL_VERIFIER.check_final({"stuck_cells": 0.0})

    def test_base_class_is_the_null_object(self):
        assert isinstance(NULL_VERIFIER, Verifier)
        assert type(NULL_VERIFIER) is Verifier


class TestCleanRuns:
    def test_threshold_run_passes(self):
        result = small_run()
        assert result.stats.visits > 0

    @pytest.mark.parametrize(
        "name", [case[0] for case in invariant_cases(quick=True)]
    )
    def test_harness_case_passes(self, name):
        cases = {case[0]: case for case in invariant_cases(quick=True)}
        _, policy, config, rates = cases[name]
        result = run_experiment(policy, config, rates)
        assert result.stats.visits > 0

    def test_harness_report_all_pass(self):
        report = run_invariants(quick=True)
        assert report.passed
        assert not report.failures
        assert {case.name for case in report.cases} == {
            "basic", "threshold", "partial", "retire+spares", "read_refresh",
            "bitexact",
        }

    def test_check_every_stride_still_passes(self):
        config = dataclasses.replace(
            BASE, verify=VerifyConfig(invariants=True, check_every=64)
        )
        result = small_run(config=config)
        assert result.stats.visits > 0

    def test_parallel_sweep_matches_serial(self):
        serial = run_invariants(quick=True, jobs=1)
        parallel = run_invariants(quick=True, jobs=2)
        assert parallel.passed
        assert serial.to_dict() == parallel.to_dict()
        assert [case.name for case in serial.cases] == [
            case.name for case in parallel.cases
        ]


class TestBitIdentity:
    @pytest.mark.parametrize("read_refresh", [False, True])
    def test_armed_run_matches_disarmed(self, read_refresh):
        rates = uniform_rates(BASE.num_lines, total_write_rate=5.0)
        off = dataclasses.replace(
            BASE, verify=VerifyConfig(), read_refresh=read_refresh
        )
        on = dataclasses.replace(BASE, read_refresh=read_refresh)
        r_off = small_run(config=off, rates=rates)
        r_on = small_run(config=on, rates=rates)
        assert r_off.stats.summary() == r_on.stats.summary()
        assert r_off.final_state == r_on.final_state


def corrupting(monkeypatch, method, replacement):
    monkeypatch.setattr(ScrubStats, method, replacement)


class TestDetection:
    def test_dropped_scrub_writes_detected(self, monkeypatch):
        corrupting(monkeypatch, "record_scrub_writes", lambda self, count: None)
        with pytest.raises(InvariantViolation) as excinfo:
            small_run()
        assert excinfo.value.invariant == "scrub_write_count"

    def test_dropped_decodes_detected(self, monkeypatch):
        original = ScrubStats.record_decodes
        corrupting(
            monkeypatch,
            "record_decodes",
            lambda self, count: original(self, count + 1),
        )
        with pytest.raises(InvariantViolation) as excinfo:
            small_run()
        assert excinfo.value.invariant in (
            "scrub_decode_count", "histogram_mass"
        )

    def test_corrupted_histogram_detected(self, monkeypatch):
        corrupting(
            monkeypatch, "record_error_counts", lambda self, counts: None
        )
        with pytest.raises(InvariantViolation) as excinfo:
            small_run()
        assert excinfo.value.invariant == "histogram_mass"

    def test_energy_drift_detected(self, monkeypatch):
        original = ScrubStats.record_reads

        def drifted(self, count):
            original(self, count)
            self.ledger.energy["scrub_read"] += 1e-6

        corrupting(monkeypatch, "record_reads", drifted)
        with pytest.raises(InvariantViolation) as excinfo:
            small_run()
        assert excinfo.value.invariant == "energy_scrub_read"

    def test_partial_cell_corruption_detected(self, monkeypatch):
        original = ScrubStats.record_partial_scrub_writes

        def corrupted(self, lines, cells):
            original(self, lines, max(0, cells - 1))

        corrupting(monkeypatch, "record_partial_scrub_writes", corrupted)
        with pytest.raises(InvariantViolation) as excinfo:
            small_run(policy=partial_scrub(interval=2 * units.HOUR))
        assert excinfo.value.invariant == "partial_cell_count"

    def test_spare_pool_mismatch_detected(self, monkeypatch):
        # Weak endurance + rewrite-everything policy guarantees retirements.
        config = dataclasses.replace(
            BASE,
            retire_hard_limit=2,
            spares_per_region=8,
            endurance=EnduranceSpec(mean_writes=20.0),
        )
        from repro.mem.sparing import SparePool

        original = SparePool.request

        def leaky(self, region, count):
            # Grant the spares without booking them: used/retired diverge.
            grant = original(self, region, count)
            if grant:
                self.used[region] -= 1
            return grant

        monkeypatch.setattr(SparePool, "request", leaky)
        from repro.core import basic_scrub

        with pytest.raises(InvariantViolation) as excinfo:
            small_run(policy=basic_scrub(interval=units.HOUR), config=config)
        assert excinfo.value.invariant == "spares_match_retirements"


class TestViolationStructure:
    def _violation(self, monkeypatch, config=BASE):
        monkeypatch.setattr(
            ScrubStats, "record_scrub_writes", lambda self, count: None
        )
        with pytest.raises(InvariantViolation) as excinfo:
            small_run(config=config)
        return excinfo.value

    def test_carries_location_and_values(self, monkeypatch):
        violation = self._violation(monkeypatch)
        assert violation.invariant == "scrub_write_count"
        assert violation.time is not None
        assert violation.region is not None
        assert violation.expected != violation.actual

    def test_to_dict_is_json_able(self, monkeypatch):
        violation = self._violation(monkeypatch)
        payload = violation.to_dict()
        encoded = json.loads(json.dumps(payload))
        assert encoded["invariant"] == "scrub_write_count"
        assert encoded["expected"] != encoded["actual"]

    def test_trace_tail_attached_when_tracing(self, monkeypatch):
        config = dataclasses.replace(BASE, obs=ObsConfig(trace=True))
        violation = self._violation(monkeypatch, config=config)
        assert violation.trace_tail
        assert len(violation.trace_tail) <= InvariantChecker.TRACE_TAIL_EVENTS

    def test_no_trace_tail_without_tracing(self, monkeypatch):
        violation = self._violation(monkeypatch)
        assert violation.trace_tail == []
