"""Bit-exact ledger cross-check: clean runs, corruption shims, identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core import light_scrub, strong_ecc_scrub
from repro.params import CellSpec, DriftParams, LineSpec, replace
from repro.sim.bitexact import BitExactEngine
from repro.sim.rng import RngStreams
from repro.verify.bitexact import (
    NULL_BITEXACT_VERIFIER,
    BitExactChecker,
    BitExactVerifier,
    run_checked,
)
from repro.verify.invariants import InvariantViolation


def fast_spec() -> LineSpec:
    cell = CellSpec()
    return LineSpec(
        cell=replace(
            cell,
            drift=(
                cell.drift[0],
                DriftParams(0.03, 0.012),
                DriftParams(0.08, 0.032),
                cell.drift[3],
            ),
        )
    )


def make_engine(policy, verifier=None, seed=3, num_lines=4) -> BitExactEngine:
    return BitExactEngine(
        policy, num_lines, RngStreams(seed), line_spec=fast_spec(),
        verifier=verifier,
    )


class TestNullVerifier:
    def test_default_is_the_shared_null(self):
        engine = make_engine(light_scrub(units.HOUR, 4))
        assert engine.verifier is NULL_BITEXACT_VERIFIER
        assert not engine.verifier.enabled
        assert type(NULL_BITEXACT_VERIFIER) is BitExactVerifier


class TestCleanRuns:
    def test_checked_run_passes_with_detector(self):
        engine = make_engine(light_scrub(units.HOUR, 4), BitExactChecker())
        result = engine.run(horizon=8 * units.HOUR)
        assert result.stats.visits > 0

    def test_checked_run_passes_without_detector(self):
        engine = make_engine(strong_ecc_scrub(units.HOUR, 8), BitExactChecker())
        result = engine.run(horizon=8 * units.HOUR)
        assert result.stats.scrub_decodes > 0

    def test_harness_leg_runs_both_paths(self):
        visits, uncorrectable, silent = run_checked(quick=True)
        assert visits > 0
        assert uncorrectable >= silent >= 0

    def test_checked_run_is_bit_identical_to_unchecked(self):
        checked = make_engine(light_scrub(units.HOUR, 4), BitExactChecker())
        plain = make_engine(light_scrub(units.HOUR, 4))
        a = checked.run(horizon=12 * units.HOUR)
        b = plain.run(horizon=12 * units.HOUR)
        assert a.stats.summary() == b.stats.summary()
        assert a.silent_corruptions == b.silent_corruptions
        assert np.array_equal(checked._stored, plain._stored)


class TestCorruptionShims:
    """Deliberately break the engine's accounting; the checker must notice."""

    def test_dropped_scrub_write_counter_detected(self):
        engine = make_engine(light_scrub(units.HOUR, 4), BitExactChecker())
        engine.stats.record_scrub_writes = lambda count: None  # the bug
        with pytest.raises(InvariantViolation) as info:
            engine.run(horizon=units.DAY)
        assert info.value.invariant == "bitexact_scrub_write_count"

    def test_tampered_silent_tally_detected(self):
        engine = make_engine(light_scrub(units.HOUR, 4), BitExactChecker())
        engine.write_random(0.0, np.random.default_rng(0))
        engine.silent_corruptions = 1  # tally drifts from reality
        with pytest.raises(InvariantViolation) as info:
            engine.scrub_pass(units.HOUR)
        assert info.value.invariant == "bitexact_silent_corruptions"

    def test_tampered_uncorrectable_detected(self):
        engine = make_engine(light_scrub(units.HOUR, 4), BitExactChecker())
        engine.write_random(0.0, np.random.default_rng(0))
        engine.stats.uncorrectable += 2
        with pytest.raises(InvariantViolation) as info:
            engine.scrub_pass(units.HOUR)
        assert info.value.invariant == "bitexact_uncorrectable_count"

    def test_tampered_detector_miss_detected(self):
        engine = make_engine(light_scrub(units.HOUR, 4), BitExactChecker())
        engine.write_random(0.0, np.random.default_rng(0))
        engine.stats.detector_misses += 1
        with pytest.raises(InvariantViolation) as info:
            engine.scrub_pass(units.HOUR)
        assert info.value.invariant == "bitexact_detector_miss_count"


class TestCheckerClassification:
    """Unit-level: the checker re-derives outcomes from raw facts alone."""

    def observe(self, checker, **overrides):
        kwargs = dict(
            time=0.0,
            line=0,
            raw=np.zeros(4, dtype=np.int8),
            stored=np.zeros(4, dtype=np.int8),
            true_data=np.zeros(2, dtype=np.int8),
            crc_clean=None,
            decode_ok=True,
            decoded_data=np.zeros(2, dtype=np.int8),
            corrected=0,
            threshold=1,
        )
        kwargs.update(overrides)
        checker.observe_line(**kwargs)

    def test_silent_miscorrection_derived_independently(self):
        checker = BitExactChecker()
        self.observe(checker, decoded_data=np.ones(2, dtype=np.int8))
        assert checker._silent == 1
        assert checker._uncorrectable == 1

    def test_clean_crc_with_changed_word_is_a_miss(self):
        checker = BitExactChecker()
        self.observe(
            checker, crc_clean=True, decode_ok=None, decoded_data=None,
            raw=np.ones(4, dtype=np.int8),
        )
        assert checker._misses == 1
        assert checker._decodes == 0

    def test_threshold_gates_writeback(self):
        checker = BitExactChecker()
        self.observe(checker, corrected=2, threshold=3)
        assert checker._writebacks == 0
        self.observe(checker, corrected=3, threshold=3)
        assert checker._writebacks == 1

    def test_decode_after_clean_crc_is_structural_violation(self):
        checker = BitExactChecker()
        with pytest.raises(InvariantViolation) as info:
            self.observe(checker, crc_clean=True, decode_ok=True)
        assert info.value.invariant == "bitexact_decode_after_clean_crc"

    def test_missing_decode_is_structural_violation(self):
        checker = BitExactChecker()
        with pytest.raises(InvariantViolation) as info:
            self.observe(checker, crc_clean=False, decode_ok=None)
        assert info.value.invariant == "bitexact_missing_decode"

    def test_missing_decoded_data_is_structural_violation(self):
        checker = BitExactChecker()
        with pytest.raises(InvariantViolation) as info:
            self.observe(checker, decode_ok=True, decoded_data=None)
        assert info.value.invariant == "bitexact_missing_decoded_data"
