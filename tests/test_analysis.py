"""Analysis helpers: tables, statistics, sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.analysis.stats import mean_confidence_interval, poisson_interval, summarize
from repro.analysis.sweeps import sweep_intervals, sweep_policies
from repro.analysis.tables import format_series, format_table
from repro.core import basic_scrub, strong_ecc_scrub
from repro.sim.config import SimulationConfig

SMALL = SimulationConfig(
    num_lines=256, region_size=64, horizon=units.DAY, endurance=None
)


class TestTables:
    def test_basic_table(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
        with pytest.raises(ValueError):
            format_table([], [])

    def test_float_rendering(self):
        text = format_table(["v"], [[1.23456e-7], [123456.0], [0.0]])
        assert "1.235e-07" in text
        assert "1.235e+05" in text

    def test_series(self):
        text = format_series("t", [1, 2], {"a": [0.1, 0.2], "b": [3, 4]})
        header = text.splitlines()[0].split()
        assert header == ["t", "a", "b"]

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("t", [1, 2], {"a": [1]})

    def test_empty_rows_render_header_only(self):
        text = format_table(["alpha", "b"], [])
        lines = text.splitlines()
        assert lines == ["alpha  b", "-----  -"]

    def test_empty_rows_with_title(self):
        text = format_table(["x"], [], title="empty")
        assert text.splitlines() == ["empty", "x", "-"]

    def test_trailing_whitespace_stripped(self):
        # A short last cell must not leave padding at the line end.
        text = format_table(["wide-header", "y"], [["a", "b"]])
        assert all(line == line.rstrip() for line in text.splitlines())

    def test_column_wider_than_header(self):
        text = format_table(["h"], [["a-long-cell"]])
        lines = text.splitlines()
        assert lines[1] == "-" * len("a-long-cell")

    def test_negative_and_boundary_float_rendering(self):
        text = format_table(
            ["v"], [[-1.5e-4], [1e-3], [-123456.0], [9999.0], [0.001234]]
        )
        assert "-1.500e-04" in text  # below the fixed-point floor
        assert "0.001" in text  # exactly at the floor renders fixed
        assert "-1.235e+05" in text  # above the fixed-point ceiling
        assert "9999" in text  # under the ceiling stays fixed

    def test_non_numeric_cells_pass_through(self):
        text = format_table(["a"], [[None], [True], ["x"]])
        assert "None" in text and "True" in text

    def test_series_with_no_series_is_x_only(self):
        text = format_series("t", [1, 2], {})
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[2:] == ["1", "2"]


class TestStatistics:
    def test_summarize_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.half_width == 0.0

    def test_summarize_interval_contains_truth(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 1.0, 40)
        mean, low, high = mean_confidence_interval(values)
        assert low < 10.0 < high
        assert mean == pytest.approx(10.0, abs=0.6)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_poisson_interval_zero(self):
        low, high = poisson_interval(0)
        assert low == 0.0
        assert 3.0 < high < 4.0  # the "rule of three"-ish bound

    def test_poisson_interval_contains_count(self):
        low, high = poisson_interval(100)
        assert low < 100 < high
        assert high - low < 50

    def test_poisson_negative_rejected(self):
        with pytest.raises(ValueError):
            poisson_interval(-1)


class TestSweeps:
    def test_interval_sweep_shapes(self):
        results = sweep_intervals(
            basic_scrub, [units.HOUR, 2 * units.HOUR], SMALL
        )
        assert len(results) == 2
        assert results[0].stats.visits > results[1].stats.visits

    def test_policy_sweep(self):
        results = sweep_policies(
            [basic_scrub(units.HOUR), strong_ecc_scrub(units.HOUR, 4)], SMALL
        )
        assert [r.policy_name for r in results] == ["basic(secded)", "strong(bch4)"]
        assert results[1].uncorrectable <= results[0].uncorrectable

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            sweep_intervals(basic_scrub, [], SMALL)
        with pytest.raises(ValueError):
            sweep_policies([], SMALL)
