"""Screened campaigns through the sharded service path."""

from __future__ import annotations

import pytest

from repro.screen import run_screened_campaign
from repro.service import (
    ServiceError,
    campaign_status,
    final_report,
    load_campaign,
    plan_subset_shards,
    run_worker,
    submit_campaign,
)
from repro.service.shards import CampaignShard

from .conftest import make_constraints, make_spec


class TestSubsetShards:
    def test_apportions_positions(self):
        plan = plan_subset_shards([3, 7, 8, 12, 20], 2)
        assert [list(s.indices) for s in plan] == [[3, 7], [8, 12, 20]]
        assert [s.shard_id for s in plan] == [0, 1]

    def test_never_emits_empty_shards(self):
        plan = plan_subset_shards([4, 9], 5)
        assert [list(s.indices) for s in plan] == [[4], [9]]

    def test_union_is_input(self):
        subset = [1, 2, 5, 13, 21, 34, 55]
        for shards in (1, 2, 3, 7):
            plan = plan_subset_shards(subset, shards)
            covered = [i for s in plan for i in s.indices]
            assert covered == subset

    def test_rejects_bad_subsets(self):
        with pytest.raises(ValueError):
            plan_subset_shards([], 2)
        with pytest.raises(ValueError):
            plan_subset_shards([3, 1], 2)
        with pytest.raises(ValueError):
            plan_subset_shards([1, 1], 2)

    def test_explicit_devices_validation(self):
        with pytest.raises(ValueError, match="sorted"):
            CampaignShard(shard_id=0, start=1, stop=6, devices=(5, 1))
        with pytest.raises(ValueError, match="tightly"):
            CampaignShard(shard_id=0, start=0, stop=9, devices=(1, 5))
        shard = CampaignShard(shard_id=0, start=1, stop=6, devices=(1, 5))
        assert shard.count == 2
        assert CampaignShard.from_dict(shard.to_dict()) == shard


class TestScreenedSubmit:
    def test_plan_covers_escalated_subset_only(self, spec, constraints, tmp_path):
        campaign = submit_campaign(
            spec, tmp_path / "camp", shards=2, constraints=constraints
        )
        assert campaign.screen is not None
        assert (campaign.root / "screen.json").exists()
        covered = [i for s in campaign.shards for i in s.indices]
        assert tuple(covered) == campaign.screen.escalated
        assert campaign.target_indices == campaign.screen.escalated

    def test_load_round_trips_screen_plan(self, spec, constraints, tmp_path):
        submitted = submit_campaign(
            spec, tmp_path / "camp", shards=2, constraints=constraints
        )
        loaded = load_campaign(tmp_path / "camp")
        assert loaded.screen.to_dict() == submitted.screen.to_dict()
        assert loaded.shards == submitted.shards

    def test_resubmit_same_constraints_is_idempotent(
        self, spec, constraints, tmp_path
    ):
        root = tmp_path / "camp"
        first = submit_campaign(spec, root, shards=2, constraints=constraints)
        second = submit_campaign(spec, root, shards=2, constraints=constraints)
        assert second.screen.to_dict() == first.screen.to_dict()

    def test_mismatched_screening_refused(self, spec, constraints, tmp_path):
        root = tmp_path / "camp"
        submit_campaign(spec, root, shards=2, constraints=constraints)
        with pytest.raises(ServiceError, match="screening constraints"):
            submit_campaign(spec, root, shards=2)
        with pytest.raises(ServiceError, match="screening constraints"):
            submit_campaign(
                spec, root, shards=2,
                constraints=make_constraints(spec, budget=1e6),
            )

    def test_screened_onto_unscreened_refused(self, spec, constraints, tmp_path):
        root = tmp_path / "camp"
        submit_campaign(spec, root, shards=2)
        with pytest.raises(ServiceError, match="screening constraints"):
            submit_campaign(spec, root, shards=2, constraints=constraints)


class TestScreenedService:
    def test_worker_drains_and_report_matches_batch(
        self, spec, constraints, tmp_path
    ):
        root = tmp_path / "camp"
        campaign = submit_campaign(
            spec, root, shards=2, constraints=constraints
        )

        before = campaign_status(root)
        assert before["devices_total"] == len(campaign.screen.escalated)
        assert not before["finished"]
        assert before["screen"]["mc_fraction"] == pytest.approx(
            campaign.screen.mc_fraction
        )

        summary = run_worker(root, wait_for_complete=False)
        assert summary["devices_executed"] == len(campaign.screen.escalated)

        after = campaign_status(root)
        assert after["finished"]
        assert after["report"]["mc_devices"] == len(campaign.screen.escalated)

        batch = run_screened_campaign(spec, constraints, jobs=1)
        assert final_report(root).to_dict() == batch.report.to_dict()

    def test_report_independent_of_shard_plan(self, spec, constraints, tmp_path):
        reports = []
        for shards in (1, 2):
            root = tmp_path / f"camp-{shards}"
            submit_campaign(spec, root, shards=shards, constraints=constraints)
            run_worker(root, wait_for_complete=False)
            reports.append(final_report(root).to_dict())
        assert reports[0] == reports[1]

    def test_zero_escalation_campaign_is_born_finished(self, spec, tmp_path):
        root = tmp_path / "camp"
        campaign = submit_campaign(
            spec, root, shards=2,
            constraints=make_constraints(spec, budget=1e6),
        )
        assert campaign.shards == ()
        status = campaign_status(root)
        assert status["finished"]
        assert status["devices_total"] == 0
        report = final_report(root)
        assert report.mc_devices == 0
        assert report.devices == spec.devices
        summary = run_worker(root, wait_for_complete=False)
        assert summary["devices_executed"] == 0
