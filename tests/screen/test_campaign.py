"""Screened campaign execution and report composition."""

from __future__ import annotations

import pytest

from repro.fleet import run_campaign
from repro.fleet.report import FIT_HOURS
from repro.screen import (
    MC,
    ScreenInvariantError,
    compose_screened_report,
    plan_screen,
    run_screened_campaign,
)

from .conftest import make_constraints, make_spec


@pytest.fixture(scope="module")
def outcome(spec, constraints):
    return run_screened_campaign(spec, constraints, jobs=1)


class TestScreenedRun:
    def test_only_escalated_devices_run_mc(self, spec, constraints, outcome):
        assert outcome.finished
        assert outcome.mc_devices == len(outcome.plan.escalated)
        assert outcome.mc_outcome.executed == outcome.mc_devices
        assert outcome.mc_outcome.total == outcome.mc_devices
        assert outcome.report.mc_devices < spec.devices

    def test_provenance_partitions_the_fleet(self, spec, outcome):
        report = outcome.report
        assert len(report.provenance) == spec.devices
        mc_rows = [row for row in report.provenance if row["method"] == MC]
        surrogate_rows = [
            row for row in report.provenance if row["method"] != MC
        ]
        assert {row["index"] for row in mc_rows} == set(outcome.plan.escalated)
        assert len(mc_rows) + len(surrogate_rows) == spec.devices
        # MC rows carry observations, surrogate rows carry expectations.
        assert all(row["observed_ue"] is not None for row in mc_rows)
        assert all(row["observed_ue"] is None for row in surrogate_rows)
        assert all(row["expected_ue"] is not None for row in surrogate_rows)

    def test_fit_composes_surrogate_and_mc(self, spec, outcome):
        report = outcome.report
        expected_point = (
            (report.surrogate_expected_ue + report.mc_uncorrectable)
            / report.device_hours
            * FIT_HOURS
        )
        assert report.fit == pytest.approx(expected_point)
        assert report.fit_low <= report.fit <= report.fit_high
        assert report.fit_scaled == pytest.approx(
            report.fit * spec.capacity_scale
        )
        assert (
            report.availability_low
            <= report.availability
            <= report.availability_high
        )

    def test_report_round_trips_to_dict(self, outcome):
        data = outcome.report.to_dict()
        assert data["devices"] == outcome.report.devices
        assert data["mc_devices"] == outcome.report.mc_devices
        assert len(data["provenance"]) == outcome.report.devices

    def test_matches_full_mc_on_escalated_subset(self, spec, outcome):
        # Subset MC records are bit-identical to the same devices in a
        # full campaign: per-device seeding is index-based.
        full = run_campaign(spec, jobs=1)
        by_index = {r.index: r for r in full.records}
        for record in outcome.mc_outcome.records:
            ours = record.to_dict()
            theirs = by_index[record.index].to_dict()
            # Wall-clock is the one legitimately nondeterministic field.
            ours.pop("runtime_seconds")
            theirs.pop("runtime_seconds")
            assert ours == theirs


class TestDeterminism:
    def test_independent_of_jobs(self, spec, constraints, outcome):
        parallel = run_screened_campaign(spec, constraints, jobs=3)
        assert parallel.report.to_dict() == outcome.report.to_dict()

    def test_kill_resume_is_bit_identical(
        self, spec, constraints, outcome, tmp_path
    ):
        journal = tmp_path / "screen.jsonl"
        first = run_screened_campaign(
            spec, constraints, checkpoint=journal, stop_after=1
        )
        assert not first.finished
        assert first.report is None
        assert first.mc_outcome.completed == 1
        resumed = run_screened_campaign(
            spec, constraints, checkpoint=journal, resume=True
        )
        assert resumed.finished
        assert resumed.mc_outcome.executed == outcome.mc_devices - 1
        assert resumed.report.to_dict() == outcome.report.to_dict()


class TestZeroEscalation:
    def test_all_surrogate_fleet_needs_no_mc(self, spec):
        # A huge budget clears every lot: everything passes or fails
        # analytically and the MC engine never spins up.
        outcome = run_screened_campaign(
            spec, make_constraints(spec, budget=1e6)
        )
        assert outcome.finished
        assert outcome.mc_outcome is None
        assert outcome.report.mc_devices == 0
        assert outcome.report.mc_report is None
        assert outcome.report.escalation_ratio == float("inf")
        assert outcome.report.fit_low == outcome.report.fit_high


class TestCompositionInvariants:
    def test_rejects_wrong_spec(self, spec, constraints):
        plan = plan_screen(spec, constraints)
        other = make_spec(seed=99)
        with pytest.raises(ScreenInvariantError, match="different spec"):
            compose_screened_report(other, plan, ())

    def test_rejects_missing_mc_records(self, spec, constraints):
        plan = plan_screen(spec, constraints)
        with pytest.raises(ScreenInvariantError, match="tile"):
            compose_screened_report(spec, plan, ())

    def test_rejects_surplus_records(self, spec, constraints, outcome):
        plan = plan_screen(spec, constraints)
        full = run_campaign(spec, jobs=1)
        with pytest.raises(ScreenInvariantError):
            compose_screened_report(spec, plan, full.records)

    def test_rejects_duplicate_records(self, spec, constraints, outcome):
        plan = plan_screen(spec, constraints)
        records = tuple(outcome.mc_outcome.records)
        with pytest.raises(ScreenInvariantError, match="duplicate"):
            compose_screened_report(spec, plan, records + records[:1])
