"""Shared fixtures for the screening tests.

One small three-lot fleet, sized so the surrogate classifies each lot
differently under the standard count budget:

* ``cool`` (300 K, 5 devices): predictive interval clears the budget -> pass;
* ``hot`` (316 K, 2 devices): interval straddles it -> uncertain -> MC;
* ``recalled`` (350 K, 1 device): interval violates it outright -> fail.

Devices are 64 lines over a 1-day horizon with 2-hour threshold scrub
(detector off - the surrogate's validated regime), so the escalated MC
runs are milliseconds each.
"""

from __future__ import annotations

import pytest

from repro import units
from repro.fleet import FleetSpec, Lot, LotParameter
from repro.fleet.report import FIT_HOURS
from repro.screen import ScreenConstraints
from repro.sim.config import SimulationConfig

#: The count budget the standard constraints encode (expected-UE scale).
COUNT_BUDGET = 5.0


def make_spec(seed: int = 2012, devices: int = 8, **overrides) -> FleetSpec:
    base = dict(
        name="screen-test",
        devices=devices,
        policy="threshold",
        policy_kwargs={
            "interval": 2 * units.HOUR,
            "strength": 3,
            "threshold": 2,
            "with_detector": False,
        },
        base_config=SimulationConfig(
            num_lines=64, region_size=64, horizon=units.DAY, seed=seed,
            endurance=None,
        ),
        lots=(
            Lot(name="cool", weight=5,
                temperature_k=LotParameter(300.0, 0.0)),
            Lot(name="hot", weight=2,
                temperature_k=LotParameter(316.0, 0.0)),
            Lot(name="recalled", weight=1,
                temperature_k=LotParameter(350.0, 0.0)),
        ),
    )
    base.update(overrides)
    return FleetSpec(**base)


def make_constraints(spec: FleetSpec, budget: float = COUNT_BUDGET,
                     **overrides) -> ScreenConstraints:
    """FIT constraint equivalent to a per-device UE count budget."""
    horizon_hours = spec.base_config.horizon / units.HOUR
    base = dict(
        fit_limit=budget * FIT_HOURS * spec.capacity_scale / horizon_hours,
    )
    base.update(overrides)
    return ScreenConstraints(**base)


@pytest.fixture(scope="module")
def spec() -> FleetSpec:
    return make_spec()


@pytest.fixture(scope="module")
def constraints(spec) -> ScreenConstraints:
    return make_constraints(spec)
