"""The ``--screen`` CLI flags on ``pcm-scrub fleet`` and ``submit``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fleet import FleetSpec
from repro.fleet.report import FIT_HOURS

from .conftest import COUNT_BUDGET, make_spec


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(make_spec().to_dict()))
    return path


@pytest.fixture
def fit_limit():
    spec = make_spec()
    horizon_hours = spec.base_config.horizon / 3600.0
    return COUNT_BUDGET * FIT_HOURS * spec.capacity_scale / horizon_hours


class TestFleetScreen:
    def test_screened_tables_and_json(self, spec_path, fit_limit, tmp_path, capsys):
        report_path = tmp_path / "screened.json"
        assert main([
            "fleet", str(spec_path), "--screen",
            "--fit-limit", str(fit_limit), "--json", str(report_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Screen plan" in out
        assert "Screened fleet reliability" in out
        assert "fewer MC device-runs" in out
        payload = json.loads(report_path.read_text())
        assert payload["devices"] == 8
        assert payload["mc_devices"] == 2
        assert payload["classifications"] == {
            "pass": 5, "fail": 1, "uncertain": 2,
        }
        assert len(payload["provenance"]) == 8

    def test_screen_without_limits_errors(self, spec_path):
        with pytest.raises(SystemExit, match="at least one"):
            main(["fleet", str(spec_path), "--screen"])

    def test_limits_without_screen_flag_error(self, spec_path, fit_limit):
        with pytest.raises(SystemExit, match="require --screen"):
            main(["fleet", str(spec_path), "--fit-limit", str(fit_limit)])

    def test_until_is_incompatible(self, spec_path, fit_limit):
        with pytest.raises(SystemExit, match="--until"):
            main([
                "fleet", str(spec_path), "--screen",
                "--fit-limit", str(fit_limit), "--until", "2",
            ])


class TestSubmitScreen:
    def test_submit_and_status_report_screen_plan(
        self, spec_path, fit_limit, tmp_path, capsys
    ):
        root = tmp_path / "camp"
        assert main([
            "submit", str(spec_path), str(root), "--shards", "2",
            "--screen", "--fit-limit", str(fit_limit),
        ]) == 0
        out = capsys.readouterr().out
        assert "Screen plan" in out
        assert (root / "screen.json").exists()

        assert main(["status", str(root)]) == 0
        out = capsys.readouterr().out
        assert "screened campaign" in out
        assert "escalated to MC" in out
