"""Screening planner: constraints, regime escalation, classification."""

from __future__ import annotations

import pytest

from repro import units
from repro.params import EnduranceSpec
from repro.screen import (
    FAIL,
    MC,
    PASS,
    SURROGATE,
    UNCERTAIN,
    ScreenConstraints,
    ScreenDecision,
    ScreenError,
    ScreenInvariantError,
    ScreenPlan,
    plan_screen,
    regime_reasons,
)
from repro.sim.config import SimulationConfig

from .conftest import make_constraints, make_spec


class TestConstraints:
    def test_at_least_one_constraint_required(self):
        with pytest.raises(ScreenError, match="at least one"):
            ScreenConstraints()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fit_limit": 0.0},
            {"fit_limit": -1.0},
            {"min_availability": 0.0},
            {"min_availability": 1.0},
            {"fit_limit": 1.0, "confidence": 0.0},
            {"fit_limit": 1.0, "confidence": 1.0},
            {"fit_limit": 1.0, "availability_margin": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ScreenError):
            ScreenConstraints(**kwargs)

    def test_dict_round_trip(self):
        constraints = ScreenConstraints(
            fit_limit=1e9, min_availability=0.9,
            confidence=0.9, availability_margin=0.05,
        )
        assert ScreenConstraints.from_dict(constraints.to_dict()) == constraints


class TestRegimeReasons:
    def test_validated_regime_is_empty(self, spec):
        assert regime_reasons(spec, spec.device_spec(0)) == ()

    def test_non_threshold_policy(self):
        spec = make_spec(
            policy="adaptive",
            policy_kwargs={"interval": 2 * units.HOUR, "strength": 3},
        )
        reasons = regime_reasons(spec, spec.device_spec(0))
        assert "regime:policy:adaptive" in reasons

    def test_detector_default_escalates(self):
        # threshold_scrub defaults its CRC detector *on*; the surrogate
        # models unconditional decode, so the spec must opt out
        # explicitly to stay in regime.
        kwargs = {"interval": 2 * units.HOUR, "strength": 3, "threshold": 2}
        spec = make_spec(policy_kwargs=kwargs)
        reasons = regime_reasons(spec, spec.device_spec(0))
        assert "regime:detector" in reasons

    def test_demand_workload(self):
        spec = make_spec(demand_write_rate=10.0)
        assert "regime:demand_workload" in regime_reasons(spec, spec.device_spec(0))

    def test_multi_region(self):
        spec = make_spec(
            base_config=SimulationConfig(
                num_lines=64, region_size=16, horizon=units.DAY, seed=2012,
                endurance=None,
            )
        )
        assert "regime:multi_region" in regime_reasons(spec, spec.device_spec(0))

    def test_wear_spares_refresh_retire(self):
        config = SimulationConfig(
            num_lines=64, region_size=64, horizon=units.DAY, seed=2012,
            endurance=EnduranceSpec(mean_writes=1e6),
            retire_hard_limit=4, read_refresh=True, spares_per_region=2,
        )
        spec = make_spec(base_config=config)
        reasons = regime_reasons(spec, spec.device_spec(0))
        for marker in (
            "regime:endurance", "regime:retire_limit",
            "regime:read_refresh", "regime:spares",
        ):
            assert marker in reasons

    def test_out_of_regime_devices_escalate_without_surrogate_numbers(self):
        spec = make_spec(demand_write_rate=10.0)
        plan = plan_screen(spec, make_constraints(spec))
        assert all(d.classification == UNCERTAIN for d in plan.decisions)
        assert all(d.expected_ue is None for d in plan.decisions)
        assert plan.mc_fraction == 1.0


class TestClassification:
    def test_lots_split_across_all_three_classes(self, spec, constraints):
        plan = plan_screen(spec, constraints)
        by_lot = {}
        for decision in plan.decisions:
            by_lot.setdefault(decision.lot, set()).add(decision.classification)
        assert by_lot == {
            "cool": {PASS}, "hot": {UNCERTAIN}, "recalled": {FAIL},
        }
        assert plan.counts() == {PASS: 5, FAIL: 1, UNCERTAIN: 2}
        assert plan.escalated == (5, 6)
        assert plan.mc_fraction == pytest.approx(0.25)

    def test_only_uncertain_devices_use_mc(self, spec, constraints):
        plan = plan_screen(spec, constraints)
        for decision in plan.decisions:
            expected = MC if decision.classification == UNCERTAIN else SURROGATE
            assert decision.method == expected
        assert set(plan.escalated) | set(plan.surrogate_indices) == set(
            range(spec.devices)
        )
        assert not set(plan.escalated) & set(plan.surrogate_indices)

    def test_uncertain_devices_carry_escalation_reason(self, spec, constraints):
        plan = plan_screen(spec, constraints)
        for index in plan.escalated:
            assert plan.decisions[index].reasons == ("fit_ci_overlap",)

    def test_fail_beats_uncertain(self, spec):
        # The recalled lot fails the FIT screen while its availability
        # sits inside the escalation margin; fail wins - no MC is spent
        # on a device whose verdict is already deterministic.
        plan = plan_screen(
            spec,
            make_constraints(
                spec, min_availability=0.01, availability_margin=0.5
            ),
        )
        recalled = [d for d in plan.decisions if d.lot == "recalled"]
        assert all(d.classification == FAIL for d in recalled)

    def test_availability_margin_escalates(self, spec):
        # cool lot p0 ~ 0.20: a floor at 0.20 +- 0.02 straddles it.
        plan = plan_screen(
            spec,
            ScreenConstraints(min_availability=0.20, availability_margin=0.02),
        )
        cool = [d for d in plan.decisions if d.lot == "cool"]
        assert all(d.classification == UNCERTAIN for d in cool)
        assert all(d.reasons == ("availability_margin",) for d in cool)

    def test_plan_is_deterministic(self, spec, constraints):
        assert plan_screen(spec, constraints).to_dict() == plan_screen(
            spec, constraints
        ).to_dict()

    def test_plan_round_trips_through_dict(self, spec, constraints):
        plan = plan_screen(spec, constraints)
        assert ScreenPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()

    def test_surrogate_numbers_are_sane(self, spec, constraints):
        plan = plan_screen(spec, constraints)
        for decision in plan.decisions:
            assert decision.expected_ue is not None
            assert decision.expected_ue >= 0.0
            assert decision.expected_writes > 0.0
            assert 0.0 <= decision.no_ue_probability <= 1.0
            assert decision.fit_scaled >= 0.0


class TestPlanInvariants:
    def test_decisions_must_cover_indices_in_order(self, constraints):
        decision = ScreenDecision(index=1, lot="a", classification=PASS)
        with pytest.raises(ScreenInvariantError, match="in order"):
            ScreenPlan(
                spec_hash="x", constraints=constraints, decisions=(decision,)
            )

    def test_gauges_published(self, spec, constraints):
        from repro.obs.metrics import GLOBAL_REGISTRY

        plan = plan_screen(spec, constraints)
        assert GLOBAL_REGISTRY.gauge("screen_devices").value == spec.devices
        assert GLOBAL_REGISTRY.gauge("screen_escalated").value == len(
            plan.escalated
        )
        assert GLOBAL_REGISTRY.gauge("screen_mc_fraction").value == (
            pytest.approx(plan.mc_fraction)
        )


class TestBatchScalarEquivalence:
    """The batched kernel path is a pure optimization of the scalar oracle.

    ``plan_screen(..., batch=False)`` routes every device through the
    original per-device :class:`RenewalModel` recursion; classifications
    must match the batched default exactly (the ``surrogate_batch``
    verify law additionally bounds the numeric gap at 1e-9).
    """

    @staticmethod
    def _classifications(plan):
        return [
            (d.index, d.lot, d.classification, d.reasons)
            for d in plan.decisions
        ]

    def test_batch_matches_scalar_oracle_exactly(self, spec, constraints):
        batched = plan_screen(spec, constraints)
        scalar = plan_screen(spec, constraints, batch=False)
        assert self._classifications(batched) == self._classifications(scalar)
        assert batched.escalated == scalar.escalated
        for a, b in zip(batched.decisions, scalar.decisions):
            if a.expected_ue is None:
                assert b.expected_ue is None
                continue
            assert a.expected_ue == pytest.approx(b.expected_ue, rel=1e-9)
            assert a.expected_writes == pytest.approx(
                b.expected_writes, rel=1e-9
            )
            assert a.no_ue_probability == pytest.approx(
                b.no_ue_probability, rel=1e-9
            )

    @pytest.mark.parametrize("name", ["fleet_screen", "fleet_smoke"])
    def test_bundled_fleet_specs_pin_classifications(self, name):
        from pathlib import Path

        from repro.fleet import FleetSpec
        from repro.fleet.report import FIT_HOURS

        path = (
            Path(__file__).resolve().parents[2]
            / "examples" / "specs" / f"{name}.json"
        )
        spec = FleetSpec.from_file(path)
        horizon_hours = spec.base_config.horizon / units.HOUR
        constraints = ScreenConstraints(
            fit_limit=4.0 * FIT_HOURS * spec.capacity_scale / horizon_hours
        )
        batched = plan_screen(spec, constraints)
        scalar = plan_screen(spec, constraints, batch=False)
        assert self._classifications(batched) == self._classifications(scalar)
        assert batched.escalated == scalar.escalated

    def test_jobs_do_not_change_the_plan(self, spec, constraints):
        serial = plan_screen(spec, constraints)
        fanned = plan_screen(spec, constraints, jobs=2)
        assert fanned.to_dict() == serial.to_dict()
