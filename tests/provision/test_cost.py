"""CostModel: ECC overhead scaling, carbon accounting, validation."""

from __future__ import annotations

import pytest

from repro import units
from repro.provision import CostModel, J_PER_KWH


class TestOverhead:
    def test_identity_without_ecc(self):
        assert CostModel.overhead_factor(0, 512) == 1.0

    def test_scales_with_check_bits(self):
        # 64 check bits on a 512-bit line: 12.5% storage overhead.
        assert CostModel.overhead_factor(64, 512) == pytest.approx(1.125)

    def test_dollars_per_usable_gib(self):
        model = CostModel(dollars_per_gib=4.0)
        assert model.dollars_per_usable_gib(64, 512) == pytest.approx(4.5)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            CostModel.overhead_factor(-1, 512)
        with pytest.raises(ValueError):
            CostModel.overhead_factor(0, 0)


class TestCarbon:
    def test_operational_converts_joules_to_kwh(self):
        model = CostModel(carbon_intensity_kg_per_kwh=0.5)
        assert model.operational_carbon_per_gib(J_PER_KWH) == pytest.approx(0.5)

    def test_embodied_amortizes_linearly(self):
        model = CostModel(embodied_kg_per_gib=0.1, amortization_years=5.0)
        # A one-year horizon carries one fifth of the embodied carbon.
        assert model.embodied_carbon_per_gib(units.YEAR) == pytest.approx(0.02)
        # A full amortization period carries all of it.
        assert model.embodied_carbon_per_gib(5 * units.YEAR) == pytest.approx(0.1)

    def test_embodied_scaled_by_ecc_overhead(self):
        model = CostModel(embodied_kg_per_gib=0.1, amortization_years=1.0)
        assert model.embodied_carbon_per_gib(
            units.YEAR, overhead_bits=64, data_bits=512
        ) == pytest.approx(0.1125)

    def test_total_is_operational_plus_embodied(self):
        model = CostModel()
        energy, horizon = 1e5, 2 * units.YEAR
        total = model.carbon_per_gib(energy, horizon, 40, 512)
        assert total == pytest.approx(
            model.operational_carbon_per_gib(energy)
            + model.embodied_carbon_per_gib(horizon, 40, 512)
        )


class TestValidationAndSerialization:
    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(dollars_per_gib=-1.0)
        with pytest.raises(ValueError):
            CostModel(carbon_intensity_kg_per_kwh=-0.1)
        with pytest.raises(ValueError):
            CostModel(embodied_kg_per_gib=-0.1)
        with pytest.raises(ValueError):
            CostModel(amortization_years=0.0)

    def test_round_trip(self):
        model = CostModel(
            dollars_per_gib=2.5,
            carbon_intensity_kg_per_kwh=0.25,
            embodied_kg_per_gib=0.05,
            amortization_years=3.0,
        )
        assert CostModel.from_dict(model.to_dict()) == model

    def test_from_dict_defaults_missing_keys(self):
        assert CostModel.from_dict({}) == CostModel()
