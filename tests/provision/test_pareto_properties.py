"""Hypothesis laws for the Pareto core.

``tests/provision/test_search.py`` pins example-based behavior; this
module states the algebra the provisioning pipeline leans on:

* :func:`repro.provision.dominates` is a strict partial order
  (irreflexive, asymmetric, transitive);
* the frontier is invariant to input order and to positive per-axis
  rescaling (scales drawn as powers of two, so the float products are
  exact and invariance is observable as tuple equality);
* every frontier point is non-dominated, and every dropped point is
  dominated by a surviving one (soundness + completeness);
* :func:`repro.provision.merge_frontiers` is associative and
  commutative;
* the knee lies on its frontier and is itself rescaling-invariant.

The hypothesis profile is pinned in ``tests/conftest.py`` (derandomized,
no deadline), so these runs are deterministic and CI-safe.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.provision import (
    ParetoError,
    ParetoPoint,
    dominates,
    knee_point,
    merge_frontiers,
    pareto_frontier,
)

#: Axis values drawn from a small integer grid: ties and exact-equality
#: cases (the interesting dominance corners) come up constantly.
AXIS = st.integers(min_value=0, max_value=6).map(float)
#: Exact positive rescaling factors (powers of two multiply losslessly).
SCALE = st.integers(min_value=-3, max_value=3).map(lambda e: 2.0**e)


def vectors(dims: int):
    return st.lists(
        st.tuples(*([AXIS] * dims)), min_size=1, max_size=12
    )


def points_strategy(dims: int = 3):
    return vectors(dims).map(
        lambda vs: [
            ParetoPoint(key=f"p{i}", values=v) for i, v in enumerate(vs)
        ]
    )


def rescale(point: ParetoPoint, scales) -> ParetoPoint:
    return ParetoPoint(
        key=point.key,
        values=tuple(s * v for s, v in zip(scales, point.values)),
    )


class TestDominanceOrder:
    @given(a=st.tuples(AXIS, AXIS, AXIS))
    def test_irreflexive(self, a):
        assert not dominates(a, a)

    @given(a=st.tuples(AXIS, AXIS, AXIS), b=st.tuples(AXIS, AXIS, AXIS))
    def test_asymmetric(self, a, b):
        assert not (dominates(a, b) and dominates(b, a))

    @given(
        a=st.tuples(AXIS, AXIS, AXIS),
        b=st.tuples(AXIS, AXIS, AXIS),
        c=st.tuples(AXIS, AXIS, AXIS),
    )
    def test_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ParetoError):
            dominates((1.0, 2.0), (1.0, 2.0, 3.0))


class TestFrontierLaws:
    @given(points=points_strategy())
    def test_sound_and_complete(self, points):
        frontier = pareto_frontier(points)
        kept = {p.key for p in frontier}
        for p in points:
            others = [q for q in points if q.key != p.key]
            dominated = any(dominates(q.values, p.values) for q in others)
            assert (p.key in kept) == (not dominated)

    @given(points=points_strategy(), seed=st.randoms(use_true_random=False))
    def test_input_order_invariant(self, points, seed):
        shuffled = list(points)
        seed.shuffle(shuffled)
        assert pareto_frontier(shuffled) == pareto_frontier(points)

    @given(
        points=points_strategy(),
        scales=st.tuples(SCALE, SCALE, SCALE),
    )
    def test_positive_rescaling_invariant(self, points, scales):
        # Rescaling changes coordinates but never dominance, so the
        # surviving *keys* are identical and the surviving points are
        # exactly the originals rescaled.
        frontier = pareto_frontier(points)
        rescaled = pareto_frontier(rescale(p, scales) for p in points)
        assert {p.key for p in rescaled} == {p.key for p in frontier}

    @given(points=points_strategy())
    def test_idempotent(self, points):
        frontier = pareto_frontier(points)
        assert pareto_frontier(frontier) == frontier

    def test_conflicting_key_rejected(self):
        with pytest.raises(ParetoError):
            pareto_frontier(
                [
                    ParetoPoint(key="x", values=(1.0, 2.0)),
                    ParetoPoint(key="x", values=(2.0, 1.0)),
                ]
            )

    def test_nan_axis_rejected(self):
        with pytest.raises(ParetoError):
            ParetoPoint(key="x", values=(float("nan"), 1.0))


class TestMergeLaws:
    @given(a=points_strategy(), b=points_strategy(), c=points_strategy())
    def test_associative(self, a, b, c):
        # Disambiguate keys across the three sets (same key must not
        # carry different values).
        b = [ParetoPoint(key="b" + p.key, values=p.values) for p in b]
        c = [ParetoPoint(key="c" + p.key, values=p.values) for p in c]
        left = merge_frontiers(merge_frontiers(a, b), c)
        right = merge_frontiers(a, merge_frontiers(b, c))
        flat = merge_frontiers(a, b, c)
        assert left == right == flat

    @given(a=points_strategy(), b=points_strategy())
    def test_commutative(self, a, b):
        b = [ParetoPoint(key="b" + p.key, values=p.values) for p in b]
        assert merge_frontiers(a, b) == merge_frontiers(b, a)

    @given(a=points_strategy())
    def test_merge_with_own_frontier_is_identity(self, a):
        frontier = pareto_frontier(a)
        assert merge_frontiers(frontier, a) == frontier


class TestKneeLaws:
    @given(points=points_strategy())
    def test_knee_lies_on_frontier(self, points):
        frontier = pareto_frontier(points)
        assert knee_point(frontier) in frontier

    @given(
        points=points_strategy(),
        scales=st.tuples(SCALE, SCALE, SCALE),
    )
    def test_knee_rescaling_invariant(self, points, scales):
        # Per-axis normalization cancels the scales exactly (powers of
        # two divide losslessly), so the knee's key cannot move.
        frontier = pareto_frontier(points)
        rescaled = pareto_frontier(rescale(p, scales) for p in points)
        assert knee_point(rescaled).key == knee_point(frontier).key

    def test_empty_frontier_rejected(self):
        with pytest.raises(ParetoError):
            knee_point([])

    def test_dominated_input_rejected(self):
        with pytest.raises(ParetoError):
            knee_point(
                [
                    ParetoPoint(key="good", values=(0.0, 0.0)),
                    ParetoPoint(key="bad", values=(1.0, 1.0)),
                ]
            )

    def test_weights_validated(self):
        frontier = pareto_frontier(
            [
                ParetoPoint(key="a", values=(0.0, 2.0)),
                ParetoPoint(key="b", values=(2.0, 0.0)),
            ]
        )
        with pytest.raises(ParetoError):
            knee_point(frontier, weights=(1.0,))
        with pytest.raises(ParetoError):
            knee_point(frontier, weights=(1.0, -1.0))

    def test_weights_steer_the_knee(self):
        frontier = pareto_frontier(
            [
                ParetoPoint(key="low-x", values=(0.0, 4.0)),
                ParetoPoint(key="mid", values=(1.0, 1.0)),
                ParetoPoint(key="low-y", values=(4.0, 0.0)),
            ]
        )
        assert knee_point(frontier).key == "mid"
        # Caring overwhelmingly about axis 0 drags the knee to its min.
        assert knee_point(frontier, weights=(100.0, 1.0)).key == "low-x"
