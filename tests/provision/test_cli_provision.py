"""The ``pcm-scrub provision-fleet`` command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fleet import FleetSpec
from repro.provision import ProvisionError, ProvisionReport

from .conftest import make_spec


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(make_spec().to_dict()))
    return path


GRID = ["--intervals", "1800", "7200", "--strengths", "2", "4"]


class TestProvisionFleet:
    def test_tables_and_artifacts(self, spec_path, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        csv_path = tmp_path / "frontier.csv"
        assignments_path = tmp_path / "assignments.json"
        assert main([
            "provision-fleet", str(spec_path), *GRID,
            "--json", str(report_path),
            "--frontier-csv", str(csv_path),
            "--assignments", str(assignments_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Provisioning search" in out
        assert "Pareto frontier" in out
        assert "* = recommended" in out

        payload = json.loads(report_path.read_text())
        report = ProvisionReport.from_dict(payload)
        assert report.frontier_size >= 1
        assert set(report.recommended) == {"cool", "hot"}

        lines = csv_path.read_text().splitlines()
        assert len(lines) == 1 + report.frontier_size

        # The assignments file is an ordinary, loadable fleet spec with
        # per-lot overrides matching the report's recommendations.
        assignments = FleetSpec.from_file(assignments_path)
        assert assignments.has_lot_policies
        for lot in assignments.lots:
            recommended = report.lot(lot.name).recommended_evaluation
            policy, kwargs = assignments.policy_for(lot)
            assert policy == recommended.candidate.policy
            assert kwargs == recommended.candidate.policy_kwargs()

    def test_exhaustive_flag_and_explicit_thresholds(self, spec_path, capsys):
        assert main([
            "provision-fleet", str(spec_path),
            "--intervals", "7200", "--strengths", "4",
            "--thresholds", "3", "--exhaustive",
        ]) == 0
        out = capsys.readouterr().out
        assert "(exhaustive MC)" in out
        assert "theta3" in out

    def test_fit_limit_reports_infeasible_lots(self, spec_path, capsys):
        assert main([
            "provision-fleet", str(spec_path), *GRID,
            "--fit-limit", "1e-6",
        ]) == 0
        out = capsys.readouterr().out
        assert "no feasible candidate" in out

    def test_bad_policy_rejected(self, spec_path):
        with pytest.raises(ProvisionError, match="unknown policy"):
            main(["provision-fleet", str(spec_path), "--policies", "nope"])
