"""ProvisionSearch: grid, surrogate/MC routing, frontiers, assignments."""

from __future__ import annotations

import json

import pytest

from repro.fleet import run_campaign
from repro.obs.metrics import GLOBAL_REGISTRY
from repro.provision import (
    Candidate,
    CandidateSpace,
    ProvisionError,
    ProvisionReport,
    ProvisionSearch,
    provision_fleet,
    variant_spec,
)

from .conftest import make_spec, small_space


class TestCandidate:
    def test_key_and_kwargs_threshold(self):
        candidate = Candidate(policy="threshold", interval=3600.0, strength=4)
        assert candidate.effective_threshold == 3
        assert candidate.key == "threshold/T3600/t4/theta3"
        assert candidate.policy_kwargs() == {
            "interval": 3600.0,
            "strength": 4,
            "threshold": 3,
            "with_detector": False,
        }

    def test_basic_takes_interval_only(self):
        candidate = Candidate(policy="basic", interval=1800.0, strength=8)
        assert candidate.policy_kwargs() == {"interval": 1800.0}
        assert candidate.key == "basic/T1800"

    def test_builds_a_real_policy(self):
        candidate = Candidate(
            policy="threshold", interval=3600.0, strength=2, threshold=2
        )
        policy = candidate.build_policy()
        assert policy.scheme.t == 2

    def test_validation(self):
        with pytest.raises(ProvisionError):
            Candidate(policy="nope", interval=3600.0)
        with pytest.raises(ProvisionError):
            Candidate(policy="threshold", interval=0.0)
        with pytest.raises(ProvisionError):
            Candidate(policy="threshold", interval=3600.0, strength=2,
                      threshold=3)
        with pytest.raises(ProvisionError):
            Candidate(policy="basic", interval=3600.0, threshold=1)

    def test_round_trip(self):
        candidate = Candidate(
            policy="partial", interval=7200.0, strength=4, threshold=2
        )
        assert Candidate.from_dict(candidate.to_dict()) == candidate


class TestCandidateSpace:
    def test_interval_only_policies_deduplicate_over_strength(self):
        space = CandidateSpace(
            policies=("basic",), intervals=(3600.0,), strengths=(2, 4, 8)
        )
        assert [c.key for c in space.candidates()] == ["basic/T3600"]

    def test_thresholds_exceeding_strength_are_skipped(self):
        space = CandidateSpace(
            policies=("threshold",),
            intervals=(3600.0,),
            strengths=(2, 4),
            thresholds=(3,),
        )
        assert [c.key for c in space.candidates()] == [
            "threshold/T3600/t4/theta3"
        ]

    def test_empty_axes_rejected(self):
        with pytest.raises(ProvisionError):
            CandidateSpace(policies=())
        with pytest.raises(ProvisionError):
            CandidateSpace(policies=("threshold", "nope"))

    def test_round_trip(self):
        space = small_space(thresholds=(None, 1))
        assert CandidateSpace.from_dict(space.to_dict()) == space


class TestVariantSpec:
    def test_overrides_only_the_named_lot(self):
        spec = make_spec()
        candidate = Candidate(policy="threshold", interval=900.0, strength=2)
        variant = variant_spec(spec, "hot", candidate)
        assert variant.lot_named("hot").policy == "threshold"
        assert variant.lot_named("hot").policy_kwargs == candidate.policy_kwargs()
        assert variant.lot_named("cool").policy is None
        assert variant.policy_for("cool") == spec.policy_for("cool")

    def test_device_sampling_unchanged(self):
        # Policy overrides must never perturb the physical device draws.
        spec = make_spec()
        candidate = Candidate(policy="basic", interval=900.0)
        variant = variant_spec(spec, "hot", candidate)
        for index in range(spec.devices):
            base = spec.device_spec(index)
            varied = variant.device_spec(index)
            assert varied.nu_mu_scale == base.nu_mu_scale
            assert varied.temperature_k == base.temperature_k
            assert varied.config == base.config


class TestSearchRouting:
    def test_in_regime_grid_costs_no_mc(self):
        report = ProvisionSearch(make_spec(), small_space()).run()
        assert report.mc_device_runs == 0
        for lot in report.lots:
            assert all(e.method == "surrogate" for e in lot.evaluations)
            assert len(lot.frontier) >= 1
            assert lot.recommended in lot.frontier

    def test_out_of_regime_candidates_escalate(self):
        spec = make_spec()
        space = small_space(
            policies=("threshold", "basic"), intervals=(7200.0,)
        )
        report = ProvisionSearch(spec, space).run()
        for lot in report.lots:
            by_policy = {
                e.candidate.policy: e for e in lot.evaluations
            }
            assert by_policy["basic"].method == "mc"
            assert by_policy["basic"].mc_devices == lot.devices
            assert by_policy["threshold"].method == "surrogate"
        assert report.mc_device_runs == spec.devices  # one basic candidate

    def test_detector_candidates_escalate(self):
        space = small_space(intervals=(7200.0,), strengths=(4,),
                            with_detector=True)
        report = ProvisionSearch(make_spec(), space).run()
        assert report.mc_device_runs == make_spec().devices

    def test_extra_candidates_join_the_grid_once(self):
        spec = make_spec()
        basic = Candidate(policy="basic", interval=7200.0)
        in_grid = Candidate(policy="threshold", interval=7200.0, strength=4)
        report = ProvisionSearch(
            spec, small_space(), extra_candidates=(basic, in_grid, basic)
        ).run()
        grid = len(small_space().candidates())
        assert report.candidates_evaluated == (grid + 1) * len(spec.lots)
        # Only the out-of-regime extra pays for MC.
        assert report.mc_device_runs == spec.devices

    def test_extra_candidates_validated(self):
        with pytest.raises(ProvisionError, match="extra_candidates"):
            ProvisionSearch(
                make_spec(), small_space(), extra_candidates=("basic",)
            )

    def test_gauges_published(self):
        report = ProvisionSearch(make_spec(), small_space()).run()
        assert GLOBAL_REGISTRY.gauge("provision_lots").value == len(report.lots)
        assert (
            GLOBAL_REGISTRY.gauge("provision_candidates").value
            == report.candidates_evaluated
        )
        assert (
            GLOBAL_REGISTRY.gauge("provision_mc_device_runs").value
            == report.mc_device_runs
        )
        assert (
            GLOBAL_REGISTRY.gauge("provision_frontier_size").value
            == report.frontier_size
        )


class TestSearchResults:
    def test_screened_matches_exhaustive_frontier(self):
        # The acceptance property (the benchmark asserts it at scale):
        # surrogate-first search lands on the same per-lot frontier key
        # set as ground-truth exhaustive MC.
        spec = make_spec()
        space = small_space()
        screened = ProvisionSearch(spec, space).run()
        exhaustive = ProvisionSearch(spec, space, exhaustive=True).run()
        assert screened.mc_device_runs == 0
        assert exhaustive.mc_device_runs == (
            spec.devices * len(space.candidates())
        )
        for lot_s, lot_e in zip(screened.lots, exhaustive.lots):
            assert set(lot_s.frontier) == set(lot_e.frontier)

    def test_batch_matches_scalar_oracle(self):
        # The batched surrogate kernel is a pure optimization: the
        # per-device scalar recursion (batch=False) must land on the
        # same frontiers and recommendations, with evaluation numbers
        # agreeing to the surrogate_batch tolerance.
        spec = make_spec()
        space = small_space()
        batched = ProvisionSearch(spec, space).run()
        scalar = ProvisionSearch(spec, space, batch=False).run()
        assert batched.mc_device_runs == scalar.mc_device_runs == 0
        for lot_b, lot_s in zip(batched.lots, scalar.lots):
            assert lot_b.frontier == lot_s.frontier
            assert lot_b.recommended == lot_s.recommended
            for eval_b, eval_s in zip(lot_b.evaluations, lot_s.evaluations):
                assert eval_b.candidate == eval_s.candidate
                assert eval_b.method == eval_s.method
                assert eval_b.expected_ue == pytest.approx(
                    eval_s.expected_ue, rel=1e-9
                )
                assert eval_b.expected_writes == pytest.approx(
                    eval_s.expected_writes, rel=1e-9
                )
                assert eval_b.scrub_energy_j == pytest.approx(
                    eval_s.scrub_energy_j, rel=1e-9
                )

    def test_jobs_do_not_change_the_report(self):
        spec = make_spec()
        space = small_space(policies=("threshold", "basic"),
                            intervals=(7200.0,))
        one = ProvisionSearch(spec, space, jobs=1).run()
        two = ProvisionSearch(spec, space, jobs=2).run()
        assert json.dumps(one.to_dict(), sort_keys=True) == json.dumps(
            two.to_dict(), sort_keys=True
        )

    def test_fit_limit_marks_infeasible_and_filters_frontier(self):
        spec = make_spec()
        space = small_space()
        unconstrained = ProvisionSearch(spec, space).run()
        fits = sorted(
            e.fit_scaled
            for lot in unconstrained.lots
            for e in lot.evaluations
        )
        # A budget below every candidate: everything infeasible.
        tight = ProvisionSearch(
            spec, space, fit_limit=fits[0] / 10.0
        ).run()
        for lot in tight.lots:
            assert all(not e.feasible for e in lot.evaluations)
            assert lot.frontier == ()
            assert lot.recommended is None
        with pytest.raises(ProvisionError, match="no feasible"):
            tight.assignments_spec()

    def test_convenience_wrapper(self):
        report = provision_fleet(make_spec(), small_space())
        assert isinstance(report, ProvisionReport)


class TestReportArtifacts:
    def test_json_round_trip(self):
        report = ProvisionSearch(make_spec(), small_space()).run()
        data = json.loads(report.to_json())
        rehydrated = ProvisionReport.from_dict(data)
        assert rehydrated.to_dict() == report.to_dict()

    def test_rehydrated_report_needs_spec_attached(self):
        spec = make_spec()
        report = ProvisionSearch(spec, small_space()).run()
        rehydrated = ProvisionReport.from_dict(report.to_dict())
        with pytest.raises(ProvisionError, match="attach_spec"):
            rehydrated.assignments_spec()
        rehydrated.attach_spec(spec)
        assert rehydrated.assignments_spec().to_dict() == (
            report.assignments_spec().to_dict()
        )

    def test_attach_spec_validates_hash(self):
        report = ProvisionSearch(make_spec(), small_space()).run()
        with pytest.raises(ProvisionError, match="hash mismatch"):
            ProvisionReport.from_dict(report.to_dict()).attach_spec(
                make_spec(seed=999)
            )

    def test_frontier_csv_covers_every_frontier_point(self):
        report = ProvisionSearch(make_spec(), small_space()).run()
        lines = report.frontier_csv().splitlines()
        assert lines[0].startswith("lot,candidate,recommended,fit_scaled")
        assert len(lines) == 1 + report.frontier_size

    def test_fleet_frontier_merges_lots(self):
        report = ProvisionSearch(make_spec(), small_space()).run()
        merged = report.fleet_frontier()
        assert merged  # non-empty
        assert all(":" in point.key for point in merged)


class TestAssignmentsCampaign:
    def test_assignments_spec_round_trips_and_runs(self, tmp_path):
        spec = make_spec()
        report = ProvisionSearch(spec, small_space()).run()
        assignments = report.assignments_spec()
        assert assignments.has_lot_policies
        # Round-trips through the JSON file format workers load.
        path = tmp_path / "assignments.json"
        path.write_text(json.dumps(assignments.to_dict()))
        from repro.fleet import FleetSpec

        loaded = FleetSpec.from_file(path)
        assert loaded.content_hash() == assignments.content_hash()
        # Every lot runs its recommended candidate.
        for lot in assignments.lots:
            policy, kwargs = assignments.policy_for(lot)
            recommended = report.lot(lot.name).recommended_evaluation
            assert policy == recommended.candidate.policy
            assert kwargs == recommended.candidate.policy_kwargs()

    def test_assignments_campaign_kill_resume_bit_identity(self, tmp_path):
        # The provisioned per-lot spec must ride the same durability
        # guarantees as any other campaign: an interrupted + resumed run
        # reports bit-identically to an uninterrupted one.
        report = ProvisionSearch(make_spec(), small_space()).run()
        assignments = report.assignments_spec()
        straight = run_campaign(assignments, jobs=2)
        journal = tmp_path / "assignments.jsonl"
        partial = run_campaign(
            assignments, jobs=2, checkpoint=journal, stop_after=2
        )
        assert not partial.finished
        resumed = run_campaign(
            assignments, jobs=2, checkpoint=journal, resume=True
        )
        assert resumed.finished
        assert json.dumps(
            resumed.report.to_dict(), sort_keys=True
        ) == json.dumps(straight.report.to_dict(), sort_keys=True)
