"""Shared fixtures for the provisioning tests.

One deliberately tiny two-lot fleet (4 devices, 32 lines, 10-day
horizon) whose base policy is in the surrogate's validated regime, so
screened searches cost no MC at all and escalated/exhaustive searches
run in milliseconds per device.
"""

from __future__ import annotations

from repro import units
from repro.fleet import FleetSpec, Lot, LotParameter
from repro.provision import CandidateSpace
from repro.sim.config import SimulationConfig


def make_spec(seed: int = 2012, devices: int = 4, **overrides) -> FleetSpec:
    base = dict(
        name="provision-test",
        devices=devices,
        policy="threshold",
        policy_kwargs={
            "interval": 2 * units.HOUR,
            "strength": 4,
            "threshold": 3,
            "with_detector": False,
        },
        base_config=SimulationConfig(
            num_lines=32,
            region_size=32,
            horizon=10 * units.DAY,
            seed=seed,
            endurance=None,
        ),
        lots=(
            Lot(
                name="cool",
                weight=1.0,
                nu_mu_scale=LotParameter(mean=1.0, spread=0.03, low=0.0),
            ),
            Lot(
                name="hot",
                weight=1.0,
                nu_mu_scale=LotParameter(mean=1.1, spread=0.05, low=0.0),
                temperature_k=LotParameter(mean=310.0, spread=1.5, low=250.0),
            ),
        ),
    )
    base.update(overrides)
    return FleetSpec(**base)


def small_space(**overrides) -> CandidateSpace:
    base = dict(
        policies=("threshold",),
        intervals=(1800.0, 7200.0),
        strengths=(2, 4),
        thresholds=(None,),
    )
    base.update(overrides)
    return CandidateSpace(**base)
