"""Engine invariants under randomized configurations (hypothesis).

Whatever the policy, workload, or seeds, certain ledger and state
relationships must hold; these properties catch accounting bugs that
specific-scenario tests slide past.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core import threshold_scrub
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import uniform_rates

BASE = SimulationConfig(
    num_lines=512, region_size=128, horizon=3 * units.DAY, endurance=None
)

configurations = st.tuples(
    st.sampled_from([0.5 * units.HOUR, units.HOUR, 4 * units.HOUR]),  # interval
    st.sampled_from([(2, 1), (4, 1), (4, 3), (8, 6)]),  # (strength, theta)
    st.integers(0, 3),  # workload intensity step
    st.integers(1, 2**20),  # seed
    st.booleans(),  # read refresh
)


@given(params=configurations)
@settings(max_examples=25, deadline=None)
def test_ledger_invariants(params):
    interval, (strength, theta), intensity, seed, read_refresh = params
    config = dataclasses.replace(BASE, seed=seed, read_refresh=read_refresh)
    rates = (
        None
        if intensity == 0
        else uniform_rates(
            config.num_lines,
            config.num_lines * intensity / (8 * units.HOUR),
            read_write_ratio=1.0,
        )
    )
    result = run_experiment(
        threshold_scrub(interval, strength, threshold=theta), config, rates
    )
    stats = result.stats

    # Visits happened and match the static schedule (static policy).
    expected_visits = config.num_lines * int(config.horizon // interval)
    assert stats.visits == expected_visits

    # The decoder can only run on visited lines; with a detector it runs
    # on a subset (read-refresh writes do not add scrub decodes).
    assert stats.scrub_decodes <= stats.visits

    # Every scrub write is justified by a decoded correctable line or a
    # read-refresh probe; in all cases writes never exceed decodes plus
    # refresh events, and refresh events are bounded by demand reads.
    if not read_refresh or rates is None:
        assert stats.scrub_writes <= stats.scrub_decodes

    # Histogram counts exactly the decoded observations.
    assert stats.error_histogram.sum() == stats.scrub_decodes

    # Detector misses only exist for detector schemes.
    if not result.stats.costs.detect_energy or not stats.detector_misses:
        pass
    assert stats.detector_misses >= 0

    # Energy is additive and consistent with counts (float accumulation).
    import pytest

    breakdown = stats.energy_breakdown()
    assert breakdown["read"] == pytest.approx(
        stats.scrub_reads * stats.costs.read_energy, rel=1e-9
    )
    assert breakdown["write"] == pytest.approx(
        stats.scrub_writes * stats.costs.write_energy, rel=1e-9
    )
    assert stats.scrub_energy == pytest.approx(sum(breakdown.values()), rel=1e-12)

    # UEs and writes are disjoint outcomes of a visit.
    assert stats.uncorrectable + stats.scrub_writes <= (
        stats.visits + stats.demand_writes + stats.uncorrectable
    )


@given(
    seed=st.integers(1, 2**20),
    age_pair=st.sampled_from(
        [(units.HOUR, units.DAY), (units.DAY, units.WEEK)]
    ),
)
@settings(max_examples=10, deadline=None)
def test_population_error_counts_monotone(seed, age_pair):
    """Without writes, per-line error counts never decrease with time."""
    from repro.params import CellSpec
    from repro.sim.analytic import CrossingDistribution
    from repro.sim.population import LinePopulation

    early_age, late_age = age_pair
    population = LinePopulation(
        num_lines=256,
        cells_per_line=256,
        distribution=CrossingDistribution(CellSpec()),
        rng=np.random.default_rng(seed),
    )
    idx = np.arange(256)
    early = population.error_counts(idx, early_age)
    late = population.error_counts(idx, late_age)
    assert (late >= early).all()


@given(seed=st.integers(1, 2**20))
@settings(max_examples=10, deadline=None)
def test_runs_are_seed_deterministic(seed):
    config = dataclasses.replace(BASE, seed=seed)
    a = run_experiment(threshold_scrub(units.HOUR, 4), config)
    b = run_experiment(threshold_scrub(units.HOUR, 4), config)
    assert a.stats.summary() == b.stats.summary()
    assert a.final_state == b.final_state
