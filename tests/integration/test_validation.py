"""Cross-engine validation: analytic vs population vs bit-exact.

These are the experiment-E2-style checks: three independent
implementations of the same physics must agree on population statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core import strong_ecc_scrub
from repro.core.stats import ScrubStats
from repro.params import CellSpec, EnergySpec, LineSpec
from repro.pcm.array import LineArray
from repro.pcm.energy import OperationCosts
from repro.pcm.variation import VariationSpec
from repro.sim.analytic import AnalyticModel, CrossingDistribution
from repro.sim.population import LinePopulation, PopulationEngine
from repro.sim.rng import RngStreams


@pytest.fixture(scope="module")
def distribution() -> CrossingDistribution:
    return CrossingDistribution(CellSpec())


class TestPopulationMatchesAnalytic:
    def test_mean_error_counts(self, distribution):
        population = LinePopulation(
            num_lines=4096,
            cells_per_line=256,
            distribution=distribution,
            rng=np.random.default_rng(0),
        )
        model = AnalyticModel(distribution, 256)
        idx = np.arange(4096)
        for elapsed in (units.DAY, units.WEEK):
            mc = population.error_counts(idx, elapsed).mean()
            analytic = model.expected_errors_per_line(elapsed)
            assert mc == pytest.approx(analytic, rel=0.05)

    def test_line_failure_fraction(self, distribution):
        population = LinePopulation(
            num_lines=8192,
            cells_per_line=256,
            distribution=distribution,
            rng=np.random.default_rng(1),
        )
        model = AnalyticModel(distribution, 256)
        idx = np.arange(8192)
        elapsed = units.DAY
        for t_ecc in (1, 4):
            mc = (population.error_counts(idx, elapsed) > t_ecc).mean()
            analytic = model.line_failure_probability(elapsed, t_ecc)
            sigma = np.sqrt(analytic * (1 - analytic) / 8192)
            assert abs(mc - analytic) < 5 * sigma + 0.003

    def test_engine_ue_count_matches_analytic_prediction(self, distribution):
        # Strong-ECC scrub with immediate write-back: every interval is an
        # independent Binomial trial, so expected UE has a closed form.
        interval = units.DAY
        horizon = 60 * units.DAY
        num_lines = 8192
        population = LinePopulation(
            num_lines=num_lines,
            cells_per_line=256,
            distribution=distribution,
            rng=np.random.default_rng(2),
        )
        costs = OperationCosts.for_line(EnergySpec(), LineSpec(), 40, 4)
        stats = ScrubStats(costs=costs)
        PopulationEngine(
            population=population,
            policy=strong_ecc_scrub(interval, 4),
            stats=stats,
            streams=RngStreams(3),
            horizon=horizon,
            region_size=1024,
        ).simulate()
        model = AnalyticModel(distribution, 256)
        per_visit = model.line_failure_probability(interval, 4)
        expected = per_visit * stats.visits
        assert expected > 20  # the comparison is statistically meaningful
        assert stats.uncorrectable == pytest.approx(
            expected, rel=0.25
        )


class TestBitExactMatchesAnalytic:
    def test_error_rate_agreement(self, distribution):
        # The bit-exact array (with variation disabled, matching the
        # analytic model's assumptions) must reproduce the same per-cell
        # error probability.
        spec = CellSpec()
        array = LineArray(
            num_lines=64,
            cells_per_line=256,
            rng=np.random.default_rng(4),
            spec=spec,
            variation=VariationSpec(0.0, 0.0),
            endurance=None,
        )
        array.write_random(0.0)
        elapsed = units.WEEK
        total_cells = 64 * 256
        errors = array.total_errors(elapsed)
        analytic = float(distribution.cdf(elapsed)) * total_cells
        sigma = np.sqrt(analytic)
        assert abs(errors - analytic) < 5 * sigma + 3
