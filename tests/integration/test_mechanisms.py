"""Mechanism-ordering properties: the paper's qualitative claims.

Each test pins one directional claim from the paper's argument; together
they are the reproduction's "shape" contract (see DESIGN.md, fidelity
expectations).
"""

from __future__ import annotations

import pytest

from repro import units
from repro.core import (
    basic_scrub,
    combined_scrub,
    light_scrub,
    strong_ecc_scrub,
    threshold_scrub,
)
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import hotspot_rates

CONFIG = SimulationConfig(
    num_lines=4096, region_size=512, horizon=7 * units.DAY, endurance=None
)
INTERVAL = units.HOUR


@pytest.fixture(scope="module")
def baseline():
    return run_experiment(basic_scrub(INTERVAL), CONFIG)


class TestStrongEcc:
    def test_orders_of_magnitude_fewer_ues(self, baseline):
        strong = run_experiment(strong_ecc_scrub(INTERVAL, 4), CONFIG)
        assert baseline.uncorrectable > 100
        assert strong.uncorrectable < baseline.uncorrectable / 50

    def test_does_not_reduce_writes(self, baseline):
        # Same write-back-on-any-error algorithm: write volume comparable.
        strong = run_experiment(strong_ecc_scrub(INTERVAL, 4), CONFIG)
        assert strong.scrub_writes > 0.5 * baseline.scrub_writes


class TestLightweightDetection:
    def test_decodes_collapse_to_error_lines(self):
        strong = run_experiment(strong_ecc_scrub(INTERVAL, 4), CONFIG)
        light = run_experiment(light_scrub(INTERVAL, 4), CONFIG)
        # Without the detector every visit decodes; with it only lines
        # that contain errors do.
        assert strong.stats.scrub_decodes == strong.stats.visits
        assert light.stats.scrub_decodes < 0.5 * strong.stats.scrub_decodes

    def test_same_protection(self):
        strong = run_experiment(strong_ecc_scrub(INTERVAL, 4), CONFIG)
        light = run_experiment(light_scrub(INTERVAL, 4), CONFIG)
        # Detector misses are ~2^-16: protection is statistically identical.
        assert abs(light.uncorrectable - strong.uncorrectable) <= max(
            5, 0.5 * strong.uncorrectable
        )


class TestThresholdWriteback:
    def test_write_reduction_grows_with_threshold(self):
        writes = []
        for theta in (1, 2, 3):
            result = run_experiment(
                threshold_scrub(INTERVAL, 4, threshold=theta), CONFIG
            )
            writes.append(result.scrub_writes)
        assert writes[0] > writes[1] > writes[2]

    def test_trade_off_is_bounded(self, baseline):
        # theta = t-1 must still crush the baseline's UE count.
        lazy = run_experiment(threshold_scrub(INTERVAL, 4, threshold=3), CONFIG)
        assert lazy.uncorrectable < baseline.uncorrectable / 10


class TestCombined:
    def test_headline_directions(self, baseline):
        ours = run_experiment(combined_scrub(INTERVAL), CONFIG)
        # Paper: 96.5% UE reduction, 24.4x writes, 37.8% energy.
        assert ours.ue_reduction_vs(baseline) > 0.9
        assert ours.write_factor_vs(baseline) > 5.0
        assert ours.energy_reduction_vs(baseline) > 0.3

    def test_adaptive_relaxes_hot_regions(self):
        # Hot half of memory sees heavy demand writes; per-region
        # adaptation should visit it less often than a static policy would.
        rates = hotspot_rates(
            CONFIG.num_lines,
            total_write_rate=CONFIG.num_lines / (10 * units.MINUTE),
            hot_fraction=0.5,
            hot_share=0.99,
        )
        static = run_experiment(threshold_scrub(INTERVAL, 8, threshold=6), CONFIG, rates)
        adaptive = run_experiment(combined_scrub(INTERVAL), CONFIG, rates)
        assert adaptive.stats.visits < static.stats.visits
        assert adaptive.uncorrectable <= static.uncorrectable + 5
