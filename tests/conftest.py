"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import CellSpec, EnduranceSpec, EnergySpec, LineSpec
from repro.sim.rng import RngStreams


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator; tests needing other seeds make their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RngStreams:
    return RngStreams(seed=12345)


@pytest.fixture
def cell_spec() -> CellSpec:
    return CellSpec()


@pytest.fixture
def line_spec() -> LineSpec:
    return LineSpec()


@pytest.fixture
def energy_spec() -> EnergySpec:
    return EnergySpec()


@pytest.fixture
def endurance_spec() -> EnduranceSpec:
    return EnduranceSpec()
