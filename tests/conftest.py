"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import CellSpec, EnduranceSpec, EnergySpec, LineSpec
from repro.sim.rng import RngStreams
from repro.sim.runner import clear_distribution_cache

try:
    from hypothesis import HealthCheck, settings

    # One pinned profile so property tests are deterministic and bounded:
    # derandomized examples, no per-example deadline (CI machines jitter),
    # and a modest example budget - these are laws, not fuzzing campaigns.
    settings.register_profile(
        "repro",
        deadline=None,
        derandomize=True,
        max_examples=50,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile("repro")
except ImportError:  # pragma: no cover - hypothesis is an optional extra
    pass


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Point the tabulation disk cache at a per-session scratch directory.

    Tests must neither read a developer's warm ``~/.cache/repro`` (it
    could mask tabulation bugs) nor pollute it.
    """
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    import os

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield cache_dir
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(autouse=True)
def _fresh_distribution_cache():
    """Keep the in-process distribution memo from leaking across tests."""
    clear_distribution_cache()
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator; tests needing other seeds make their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RngStreams:
    return RngStreams(seed=12345)


@pytest.fixture
def cell_spec() -> CellSpec:
    return CellSpec()


@pytest.fixture
def line_spec() -> LineSpec:
    return LineSpec()


@pytest.fixture
def energy_spec() -> EnergySpec:
    return EnergySpec()


@pytest.fixture
def endurance_spec() -> EnduranceSpec:
    return EnduranceSpec()
