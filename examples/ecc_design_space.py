#!/usr/bin/env python
"""ECC design-space exploration with the bit-exact codecs.

Uses the real BCH and SECDED implementations (not the line-level
abstraction) to show storage overhead, correction behaviour, and what
happens beyond each code's limit - including detected decode failures and
the rare silent miscorrections that motivate pairing ECC with a CRC.

    python examples/ecc_design_space.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.ecc import BchCode, CrcDetector
from repro.ecc.hamming import InterleavedSecded

TRIALS = 300
DATA_BITS = 512


def stress_code(codec, encode, rng: np.random.Generator, num_errors: int) -> dict:
    """Decode TRIALS random codewords with num_errors random bit flips."""
    outcomes = {"corrected": 0, "detected_fail": 0, "silent_wrong": 0}
    for __ in range(TRIALS):
        data = rng.integers(0, 2, DATA_BITS, dtype=np.int8)
        codeword = encode(data)
        corrupted = codeword.copy()
        for pos in rng.choice(len(codeword), num_errors, replace=False):
            corrupted[pos] ^= 1
        result = codec.decode(corrupted)
        if not result.ok:
            outcomes["detected_fail"] += 1
        elif np.array_equal(codec.extract_data(result.bits), data):
            outcomes["corrected"] += 1
        else:
            outcomes["silent_wrong"] += 1
    return outcomes


def main() -> None:
    rng = np.random.default_rng(2012)
    codes = [
        ("secded x8", InterleavedSecded(DATA_BITS)),
        ("bch t=2", BchCode(DATA_BITS, 2)),
        ("bch t=4", BchCode(DATA_BITS, 4)),
        ("bch t=8", BchCode(DATA_BITS, 8)),
    ]

    rows = []
    for name, codec in codes:
        for num_errors in (1, 2, 4, 8, 10):
            outcome = stress_code(codec, codec.encode, rng, num_errors)
            rows.append(
                [
                    name,
                    getattr(codec, "check_bits", "?"),
                    num_errors,
                    f"{outcome['corrected'] / TRIALS:.1%}",
                    f"{outcome['detected_fail'] / TRIALS:.1%}",
                    f"{outcome['silent_wrong'] / TRIALS:.1%}",
                ]
            )
    print(
        format_table(
            ["code", "check bits", "errors", "corrected", "detected fail",
             "silent wrong"],
            rows,
            title=f"Random error stress ({TRIALS} trials per cell), 512-bit lines",
        )
    )

    # Why the paper pairs strong ECC with a CRC: past the limit, the BCH
    # decoder usually *detects* failure, but a CRC catches the residue.
    print("\nCRC as a second opinion beyond the ECC limit:")
    crc = CrcDetector(16)
    codec = BchCode(DATA_BITS, 4)
    caught = total_wrong = 0
    for __ in range(2000):
        data = rng.integers(0, 2, DATA_BITS, dtype=np.int8)
        codeword = codec.encode(data)
        stored_crc = crc.compute(codeword)
        corrupted = codeword.copy()
        for pos in rng.choice(len(codeword), 6, replace=False):
            corrupted[pos] ^= 1
        result = codec.decode(corrupted)
        if result.ok and not np.array_equal(
            codec.extract_data(result.bits), data
        ):
            total_wrong += 1
            if not crc.check(result.bits, stored_crc):
                caught += 1
    if total_wrong:
        print(
            f"  miscorrections in 2000 over-limit decodes: {total_wrong}; "
            f"CRC-16 caught {caught} of them"
        )
    else:
        print("  no silent miscorrections in 2000 over-limit decodes "
              "(BCH failure detection is strong)")


if __name__ == "__main__":
    main()
