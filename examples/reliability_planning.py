#!/usr/bin/env python
"""A reliability engineer's planning session, in closed form.

No Monte Carlo in this example - the analytic stack (crossing mixture,
binomial line failure, renewal steady state, lognormal wear-out) answers
the deployment questions directly:

1. how fast must each code be scrubbed for a target UE budget?
2. what does a fixed bank-time budget buy?
3. how many years until scrub-induced wear eats the spare budget?
4. how much of all that does a drift-compensated read reference change?

    python examples/reliability_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.plots import ascii_chart
from repro.analysis.tables import format_table
from repro.core.budgeted import reliability_at_budget
from repro.params import CellSpec, EnduranceSpec
from repro.pcm.reference import CompensatedSensing
from repro.sim.analytic import AnalyticModel, CrossingDistribution
from repro.sim.lifetime import project_lifetime
from repro.sim.renewal import RenewalModel

TARGET = 1e-9
LINES_PER_BANK = 1 << 22


def question_1(model: AnalyticModel) -> None:
    print("Q1: scrub interval per code at P(UE per visit) <= 1e-9")
    for t in (1, 2, 4, 8):
        interval = model.required_interval(t, TARGET)
        print(f"  ECC-{t}: {units.format_seconds(interval)}")
    print()


def question_2(model: AnalyticModel) -> None:
    print("Q2: what a bank-time budget buys (256 MiB banks)")
    rows = []
    for budget in (1e-3, 1e-4, 1e-5):
        for t in (1, 8):
            try:
                interval, failure = reliability_at_budget(
                    model, LINES_PER_BANK, budget, t
                )
                rows.append(
                    [f"{budget:.0e}", f"bch{t}",
                     units.format_seconds(interval), f"{failure:.2e}"]
                )
            except ValueError:
                rows.append([f"{budget:.0e}", f"bch{t}", "infeasible", "-"])
    print(format_table(["budget", "code", "interval", "P(UE/visit)"], rows))
    print()


def question_3(renewal: RenewalModel) -> None:
    print("Q3: years to wear-out (1e8 endurance, 1 demand write/line/h)")
    for strength, theta in [(4, 1), (8, 6)]:
        report = project_lifetime(
            renewal, units.HOUR, strength, theta, EnduranceSpec(),
            demand_write_rate=1.0 / units.HOUR,
        )
        print(
            f"  bch{strength} theta={theta}: "
            f"{report.years_to_wearout:,.0f} years "
            f"(scrub {report.scrub_write_rate:.1e} wr/line/s)"
        )
    print()


def question_4() -> None:
    print("Q4: drift-compensated read references")
    plain = AnalyticModel(CrossingDistribution(CellSpec()), 256)
    compensated = AnalyticModel(
        CrossingDistribution(model=CompensatedSensing(CellSpec())), 256
    )
    intervals = np.array(
        [10 * units.MINUTE, units.HOUR, 6 * units.HOUR, units.DAY, units.WEEK]
    )
    series = {
        "plain t=4": [plain.line_failure_probability(T, 4) for T in intervals],
        "compensated t=4": [
            compensated.line_failure_probability(T, 4) for T in intervals
        ],
    }
    print(
        ascii_chart(
            [units.format_seconds(T) for T in intervals],
            series,
            height=10,
            title="P(line uncorrectable within one interval)",
        )
    )
    print()
    for name, model in [("plain", plain), ("compensated", compensated)]:
        print(
            f"  {name}: bch4 sustains "
            f"{units.format_seconds(model.required_interval(4, TARGET))}"
        )


def main() -> None:
    model = AnalyticModel(CrossingDistribution(CellSpec()), 256)
    renewal = RenewalModel(CrossingDistribution(CellSpec()), 256)
    question_1(model)
    question_2(model)
    question_3(renewal)
    question_4()


if __name__ == "__main__":
    main()
