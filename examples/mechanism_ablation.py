#!/usr/bin/env python
"""Ablation: stack the paper's mechanisms one at a time.

Starts from the DRAM-style baseline and adds one mechanism per row -
strong ECC, lightweight detection, threshold write-back, adaptive
intervals - so each row isolates one idea's contribution to the final
headline numbers.

    python examples/mechanism_ablation.py
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core import (
    basic_scrub,
    combined_scrub,
    light_scrub,
    partial_scrub,
    strong_ecc_scrub,
    threshold_scrub,
)
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import zipf_rates


def main() -> None:
    config = SimulationConfig(
        num_lines=8192, region_size=1024, horizon=14 * units.DAY, endurance=None
    )
    rates = zipf_rates(
        config.num_lines,
        total_write_rate=config.num_lines / (8 * units.HOUR),
        alpha=1.0,
        rng=np.random.default_rng(42),
    )
    interval = units.HOUR

    steps = [
        ("baseline: SECDED, write back any error", basic_scrub(interval)),
        ("+ strong ECC (BCH-8)", strong_ecc_scrub(interval, 8)),
        ("+ lightweight detection (CRC gate)", light_scrub(interval, 8)),
        ("+ threshold write-back (theta=6)",
         threshold_scrub(interval, 8, threshold=6)),
        ("+ adaptive per-region intervals = combined",
         combined_scrub(interval, 8)),
        ("(extension) cell-selective write-back",
         partial_scrub(interval, 8, threshold=6)),
    ]

    base = None
    rows = []
    for label, policy in steps:
        result = run_experiment(policy, config, rates)
        if base is None:
            base = result
        rows.append(
            [
                label,
                result.uncorrectable,
                result.scrub_writes,
                result.stats.scrub_decodes,
                units.format_energy(result.scrub_energy),
                f"{1 - result.scrub_energy / base.scrub_energy:+.1%}",
            ]
        )
    print(
        format_table(
            ["configuration", "UE", "scrub writes", "decodes",
             "scrub energy", "E vs baseline"],
            rows,
            title=(
                "Mechanism ablation (8Ki lines, 2 weeks, zipf demand, "
                f"base interval {units.format_seconds(interval)})"
            ),
        )
    )
    print(
        "\nreading guide: strong ECC kills UEs; detection kills decodes; "
        "the threshold kills writes; adaptivity trims reads per region."
    )


if __name__ == "__main__":
    main()
