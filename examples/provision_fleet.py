#!/usr/bin/env python
"""Per-lot provisioning: pick each lot's scrub assignment off a frontier.

Builds a two-lot fleet (a nominal lot and a hot-aisle fast-drift
corner), sweeps a candidate grid of threshold-scrub configurations over
each lot, and prints:

* how the search spent its budget (surrogate evaluations vs MC
  device-runs - for this in-regime grid the MC count is zero);
* each lot's Pareto frontier over UE FIT, scrub energy/GiB, write
  wear, $/GiB, and carbon/GiB, with the knee recommendation starred;
* the recommended per-lot spec, then runs that spec through the
  ordinary campaign runner to show it is submittable as-is.

The same flow is available on the command line::

    pcm-scrub provision-fleet examples/specs/fleet_provision.json \\
        --intervals 1800 3600 7200 --strengths 2 4 --assignments out.json

    python examples/provision_fleet.py
"""

from __future__ import annotations

from repro import units
from repro.fleet import FleetSpec, Lot, LotParameter, run_campaign
from repro.provision import CandidateSpace, CostModel, ProvisionSearch
from repro.sim import SimulationConfig


def build_spec() -> FleetSpec:
    base = SimulationConfig(
        num_lines=256,
        region_size=256,
        horizon=30 * units.DAY,
        seed=2012,
        endurance=None,  # pure soft-error study
    )
    return FleetSpec(
        name="provision-example",
        devices=12,
        policy="threshold",
        policy_kwargs={
            "interval": 2 * units.HOUR,
            "strength": 4,
            "threshold": 3,
            "with_detector": False,
        },
        base_config=base,
        capacity_gib_per_device=16.0,
        lots=(
            Lot(
                name="nominal",
                weight=2,
                nu_mu_scale=LotParameter(mean=1.0, spread=0.03, low=0.0),
            ),
            Lot(
                name="hot-corner",
                weight=1,
                nu_mu_scale=LotParameter(mean=1.1, spread=0.05, low=0.0),
                temperature_k=LotParameter(mean=312.0, spread=2.0, low=250.0),
            ),
        ),
    )


def main() -> None:
    spec = build_spec()
    space = CandidateSpace(
        policies=("threshold",),
        intervals=(1800.0, 3600.0, 7200.0, 14400.0),
        strengths=(2, 4),
    )
    cost_model = CostModel(
        dollars_per_gib=4.0,
        carbon_intensity_kg_per_kwh=0.4,
        embodied_kg_per_gib=0.03,
        amortization_years=5.0,
    )

    report = ProvisionSearch(spec, space, cost_model=cost_model).run()
    print(
        f"searched {report.candidates_evaluated} (lot, candidate) pairs: "
        f"{report.mc_device_runs} MC device-runs "
        f"(everything else resolved by the exact renewal surrogate)\n"
    )

    for lot in report.lots:
        print(f"lot '{lot.lot}' ({lot.devices} devices) frontier:")
        for key in lot.frontier:
            e = lot.evaluation(key)
            star = " *" if key == lot.recommended else "  "
            print(
                f" {star} {key:28s} FIT {e.fit_scaled:9.3g}  "
                f"energy {e.energy_per_gib_j:7.3g} J/GiB  "
                f"wear {e.writes_per_device:9.3g} w/dev  "
                f"${e.dollars_per_gib:.3f}/GiB  "
                f"{e.carbon_per_gib_kg:.3g} kgCO2e/GiB"
            )
        print()

    assignments = report.assignments_spec()
    print("recommended per-lot assignments:")
    for lot in assignments.lots:
        policy, kwargs = assignments.policy_for(lot)
        print(f"  {lot.name}: {policy} {kwargs}")

    # The emitted spec is an ordinary fleet spec: run it.
    outcome = run_campaign(assignments, jobs=2)
    fleet = outcome.report
    print(
        f"\nprovisioned campaign '{assignments.name}': "
        f"{fleet.devices} devices, {fleet.uncorrectable} UE, "
        f"scrub energy {units.format_energy(fleet.scrub_energy_j)}, "
        f"FIT {fleet.fit_scaled:.3g}"
    )


if __name__ == "__main__":
    main()
