#!/usr/bin/env python
"""Device-level anatomy of a drift error, cell by cell.

Walks one MLC PCM cell through program-and-verify, resistance drift, and
the moment it crosses its read boundary; then zooms out to a line and
shows how per-line error counts grow - the quantity every scrub mechanism
is designed around.

    python examples/drift_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.params import CellSpec
from repro.pcm import Cell, LineArray
from repro.pcm.variation import VariationSpec


def single_cell_story() -> None:
    print("=" * 64)
    print("One cell, level L2 (the vulnerable intermediate level)")
    print("=" * 64)
    spec = CellSpec()
    band = spec.levels[2]
    print(f"program band: 10^{band.program_low:.1f}..10^{band.program_high:.1f} ohm")
    print(f"read boundary (misread above): 10^{band.read_high:.1f} ohm")

    # Hunt for a fast-drifting specimen so the story fits on a screen.
    for seed in range(1000):
        cell = Cell(rng=np.random.default_rng(seed))
        cell.write(2, now=0.0)
        if np.isfinite(cell.crossing_time()) and cell.crossing_time() < units.WEEK:
            break
    print(f"\nprogrammed r0 = 10^{cell.log_r0:.3f} ohm, drift exponent nu = {cell.nu:.4f}")
    t_cross = cell.crossing_time()
    print(f"predicted crossing time: {units.format_seconds(t_cross)}")

    for t in [0.0, t_cross / 100, t_cross / 10, t_cross * 0.9, t_cross * 1.1]:
        resistance = cell.resistance_at(t)
        sensed = cell.read(t)
        marker = " <-- misread!" if sensed != 2 else ""
        print(
            f"  t={units.format_seconds(t):>8}: R = 10^{resistance:.3f}, "
            f"sensed L{sensed}{marker}"
        )


def line_level_story() -> None:
    print()
    print("=" * 64)
    print("One 256-cell line: error counts vs age (why ECC strength matters)")
    print("=" * 64)
    array = LineArray(
        num_lines=32, cells_per_line=256,
        rng=np.random.default_rng(7),
        variation=VariationSpec(0.0, 0.0), endurance=None,
    )
    array.write_random(0.0)
    print(f"{'age':>8}  {'mean errs/line':>14}  {'max errs/line':>13}  verdict")
    for age in [units.HOUR, 6 * units.HOUR, units.DAY, 3 * units.DAY, units.WEEK]:
        counts = [array.read_line(i, age).num_errors for i in range(32)]
        worst = max(counts)
        verdict = (
            "SECDED already lost" if worst > 1
            else "fine for any code"
        )
        if worst > 8:
            verdict = "even BCH-8 lost"
        print(
            f"{units.format_seconds(age):>8}  {np.mean(counts):>14.2f}  "
            f"{worst:>13}  {verdict}"
        )


def population_story() -> None:
    print()
    print("=" * 64)
    print("Analytic view: time until a line defeats each code (no scrub)")
    print("=" * 64)
    from repro.sim.analytic import AnalyticModel, CrossingDistribution

    model = AnalyticModel(CrossingDistribution(CellSpec()), 256)
    for t_ecc in (1, 2, 4, 8):
        interval = model.required_interval(t_ecc, 1e-9)
        print(
            f"  ECC-{t_ecc}: rescrub every {units.format_seconds(interval):>8} "
            f"to hold P(UE per visit) <= 1e-9"
        )


if __name__ == "__main__":
    single_cell_story()
    line_level_story()
    population_story()
