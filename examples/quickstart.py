#!/usr/bin/env python
"""Quickstart: the paper's headline result in ~20 lines.

Runs the DRAM-style baseline scrub and the paper's combined mechanism over
the same simulated memory, then prints the three abstract metrics:
uncorrectable-error reduction, scrub-write factor, and scrub-energy
reduction.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import units
from repro.core import basic_scrub, combined_scrub
from repro.sim import SimulationConfig, run_experiment


def main() -> None:
    # 8192 Monte-Carlo lines, two simulated weeks, hourly base scrub rate.
    config = SimulationConfig(
        num_lines=8192,
        region_size=1024,
        horizon=14 * units.DAY,
        endurance=None,  # pure soft-error study
    )

    print("simulating basic DRAM-style scrub (SECDED, write back any error)...")
    base = run_experiment(basic_scrub(interval=units.HOUR), config)

    print("simulating the combined mechanism (BCH-8 + CRC + threshold + adaptive)...")
    ours = run_experiment(combined_scrub(interval=units.HOUR), config)

    print()
    print(f"{'metric':<22}{'basic':>12}{'combined':>12}")
    print(f"{'uncorrectable errors':<22}{base.uncorrectable:>12}{ours.uncorrectable:>12}")
    print(f"{'scrub writes':<22}{base.scrub_writes:>12}{ours.scrub_writes:>12}")
    print(
        f"{'scrub energy':<22}"
        f"{units.format_energy(base.scrub_energy):>12}"
        f"{units.format_energy(ours.scrub_energy):>12}"
    )
    print()
    print(f"UE reduction:       {ours.ue_reduction_vs(base):6.1%}  (paper: 96.5%)")
    print(f"scrub-write factor: {ours.write_factor_vs(base):5.1f}x  (paper: 24.4x)")
    print(f"energy reduction:   {ours.energy_reduction_vs(base):6.1%}  (paper: 37.8%)")


if __name__ == "__main__":
    main()
