#!/usr/bin/env python
"""Observability walkthrough: trace, sample, and profile one simulation.

Runs the paper's combined mechanism with all three `repro.obs` pillars
enabled, then shows what each one collected:

* the structured event trace (what happened, when, where),
* the periodic time series (how the run's health evolved), whose final
  sample matches the end-of-run ``ScrubStats`` aggregates exactly,
* the per-phase wall-time profile (where the simulation spent its time).

Telemetry is opt-in per run via ``ObsConfig`` and never perturbs results:
an instrumented run is bit-identical to an uninstrumented one.

    python examples/observability.py
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro import units
from repro.core import basic_scrub, combined_scrub
from repro.sim import ObsConfig, SimulationConfig, run_experiment


def main() -> None:
    horizon = 7 * units.DAY
    config = SimulationConfig(
        num_lines=4096,
        region_size=512,
        horizon=horizon,
        endurance=None,
        obs=ObsConfig(
            trace=True,                     # record every structured event
            sample_every=horizon / 16,      # 16 time-series samples
            profile=True,                   # per-phase wall-time spans
        ),
    )

    print("simulating the combined mechanism with full observability...")
    result = run_experiment(combined_scrub(interval=units.HOUR), config)

    # --- pillar 1: the event trace -------------------------------------
    counts = Counter(event["event"] for event in result.trace)
    print(f"\ntrace: {len(result.trace)} events")
    for name, count in counts.most_common():
        print(f"  {name:<18}{count:>8}")
    first = result.trace[0]
    print(f"  first event: {first['event']} at t={units.format_seconds(first['t'])}")

    # --- pillar 2: the time series -------------------------------------
    series = result.timeseries
    print(f"\ntime series: {len(series.samples)} samples, every "
          f"{units.format_seconds(horizon / 16)}")
    print(f"  {'t':>8}  {'uncorrectable':>14}  {'stuck_cells':>12}  {'scrub_writes':>13}")
    for sample in series.samples:
        print(f"  {units.format_seconds(sample['t']):>8}  "
              f"{sample['uncorrectable']:>14.0f}  "
              f"{sample['stuck_cells']:>12.0f}  {sample['scrub_writes']:>13.0f}")

    # The final sample IS the run's end-of-run aggregate - no drift
    # between "what the sampler saw" and "what the run reports".
    final = series.final
    summary = result.stats.summary()
    assert all(final[key] == value for key, value in summary.items())
    print("  final sample == stats.summary(): verified")

    # --- pillar 3: the profile -----------------------------------------
    print("\nprofile (per-phase wall time):")
    for name, entry in sorted(
        result.profile.items(), key=lambda kv: -kv[1]["seconds"]
    ):
        print(f"  {name:<10}{entry['calls']:>8} calls  {entry['seconds']:>8.3f}s")

    # --- the zero-overhead guarantee -----------------------------------
    plain = run_experiment(
        combined_scrub(interval=units.HOUR),
        SimulationConfig(
            num_lines=4096, region_size=512, horizon=horizon, endurance=None
        ),
    )
    assert plain.stats.summary() == summary
    assert plain.final_state == result.final_state
    print("\nobs-off run is bit-identical to the instrumented run: verified")

    # --- pillar 4: the fast-forward counters ---------------------------
    # At a drift-compensated, idle operating point the scrub loop skips
    # long error-free stretches wholesale; the skipped-visit counter, the
    # `fastforward` profiler span, and the `fast_forward` trace events
    # show how much of the run never needed a per-visit walk.
    quiet = SimulationConfig(
        num_lines=4096,
        region_size=512,
        horizon=horizon,
        endurance=None,
        compensated_sensing=True,
        obs=ObsConfig(trace=True, profile=True),
    )
    fast = run_experiment(basic_scrub(interval=units.HOUR), quiet)
    ff = fast.fast_forward
    region_visits = int(fast.stats.visits) // quiet.region_size
    print("\nfast-forward (idle, drift-compensated basic scrub):")
    print(f"  region visits:    {region_visits:>8}")
    print(f"  skipped visits:   {ff['skipped_visits']:>8}  "
          f"(folded into {ff['jumps']} jumps)")
    span = fast.profile.get("fastforward")
    if span:
        print(f"  fastforward span: {span['calls']:>8} calls  "
              f"{span['seconds']:>8.3f}s")
    jumps = [e for e in fast.trace if e["event"] == "fast_forward"]
    print(f"  trace events:     {len(jumps):>8} fast_forward")

    naive = run_experiment(
        basic_scrub(interval=units.HOUR),
        dataclasses.replace(quiet, fast_forward=False, obs=ObsConfig()),
    )
    assert naive.stats.summary() == fast.stats.summary()
    assert naive.final_state == fast.final_state
    print("  naive walk is bit-identical to the fast-forward run: verified")


if __name__ == "__main__":
    main()
