#!/usr/bin/env python
"""Operating-conditions walkthrough: thermal cycling and read traffic.

Two deployment realities the base experiments idealize away, modelled
exactly by the engine extensions:

* the machine room cycles between day and night temperatures
  (``ThermalProfile``: drift accelerates Arrhenius-style in hot phases);
* the workload *reads* constantly, and every read already pays for an ECC
  decode - so read-triggered refresh turns that traffic into free scrub
  coverage (``read_refresh=True``).

    python examples/thermal_and_reads.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core import threshold_scrub
from repro.pcm.thermal import ThermalPhase, ThermalProfile
from repro.sim import SimulationConfig, run_experiment
from repro.workloads.generators import DemandRates

BASE = SimulationConfig(
    num_lines=4096, region_size=512, horizon=14 * units.DAY, endurance=None
)


def diurnal() -> ThermalProfile:
    return ThermalProfile(
        [
            ThermalPhase(12 * units.HOUR, 330.0),  # daytime load
            ThermalPhase(12 * units.HOUR, 305.0),  # night setback
        ]
    )


def read_heavy(reads_per_line_per_hour: float) -> DemandRates:
    return DemandRates(
        write_rate=np.zeros(BASE.num_lines),
        read_rate=np.full(BASE.num_lines, reads_per_line_per_hour / units.HOUR),
        name=f"reads({reads_per_line_per_hour:g}/h)",
    )


def main() -> None:
    policy = lambda: threshold_scrub(4 * units.HOUR, strength=4, threshold=3)

    scenarios = [
        ("300K constant, no reads", BASE, None),
        ("diurnal 305/330K, no reads",
         dataclasses.replace(BASE, thermal_profile=diurnal()), None),
        ("diurnal + 1 read/line/h (ignored)",
         dataclasses.replace(BASE, thermal_profile=diurnal()),
         read_heavy(1.0)),
        ("diurnal + 1 read/line/h + read refresh",
         dataclasses.replace(BASE, thermal_profile=diurnal(), read_refresh=True),
         read_heavy(1.0)),
    ]

    rows = []
    for name, config, rates in scenarios:
        result = run_experiment(policy(), config, rates)
        rows.append(
            [
                name,
                result.uncorrectable,
                result.scrub_writes,
                units.format_energy(result.scrub_energy),
            ]
        )
    print(
        format_table(
            ["scenario", "UE", "scrub writes", "scrub energy"],
            rows,
            title=(
                "Operating conditions vs scrub outcomes "
                "(threshold bch4, 4h interval, 2 weeks)"
            ),
        )
    )
    print(
        "\nreading guide: heat multiplies drift errors; read traffic alone "
        "does nothing; letting the read path trigger refreshes claws most "
        "of the loss back without touching the scrub rate."
    )


if __name__ == "__main__":
    main()
