#!/usr/bin/env python
"""Capacity-planning walkthrough: tuning scrub for a PCM-backed server.

A scenario study using the public API end to end: given a server with a
known workload skew, operating temperature, and reliability budget, find
the cheapest scrub configuration that meets the budget.

    python examples/datacenter_tuning.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core import combined_scrub, light_scrub, threshold_scrub
from repro.params import CellSpec
from repro.sim import SimulationConfig, run_experiment
from repro.sim.analytic import AnalyticModel, CrossingDistribution
from repro.workloads.generators import zipf_rates

#: The server runs warm - drift is Arrhenius-accelerated vs the 300K spec.
TEMPERATURE_K = 330.0
#: Reliability budget: at most this UE probability per line visit.
BUDGET = 1e-9


def pick_base_interval() -> dict[int, float]:
    """Analytic first pass: interval each code strength sustains."""
    distribution = CrossingDistribution(CellSpec(), temperature_k=TEMPERATURE_K)
    model = AnalyticModel(distribution, 256)
    return {t: model.required_interval(t, BUDGET) for t in (2, 4, 8)}


def main() -> None:
    print(f"server @ {TEMPERATURE_K:.0f}K, budget P(UE/visit) <= {BUDGET:g}\n")

    intervals = pick_base_interval()
    print("analytic sizing (how long each code can wait between scrubs):")
    for strength, interval in intervals.items():
        print(f"  BCH-{strength}: {units.format_seconds(interval)}")
    print()

    config = SimulationConfig(
        num_lines=8192,
        region_size=1024,
        horizon=14 * units.DAY,
        temperature_k=TEMPERATURE_K,
        endurance=None,
    )
    # Database-style skew: hot tables rewritten constantly, cold archive idle.
    rates = zipf_rates(
        config.num_lines,
        total_write_rate=config.num_lines / (6 * units.HOUR),
        alpha=1.1,
        rng=np.random.default_rng(17),
    )

    candidates = [
        ("light bch4", light_scrub(intervals[4], 4)),
        ("threshold bch4", threshold_scrub(intervals[4], 4)),
        ("threshold bch8", threshold_scrub(intervals[8], 8)),
        ("combined bch8", combined_scrub(intervals[8], 8)),
    ]
    rows = []
    for label, policy in candidates:
        result = run_experiment(policy, config, rates)
        rows.append(
            [
                label,
                units.format_seconds(policy.interval),
                result.uncorrectable,
                result.scrub_writes,
                units.format_energy(result.scrub_energy),
                f"{result.stats.scrub_busy_time():.1f}s",
            ]
        )
    print(
        format_table(
            ["candidate", "base interval", "UE", "scrub writes",
             "scrub energy", "bank time"],
            rows,
            title="Monte-Carlo check under the real workload (2 weeks, 8Ki lines)",
        )
    )
    print()
    best = min(rows, key=lambda row: (row[2], row[3]))
    print(f"recommendation: {best[0]} - fewest UEs, then fewest writes")

    # Show the cost of ignoring temperature in the sizing step.
    cold_sizing = AnalyticModel(
        CrossingDistribution(CellSpec(), temperature_k=300.0), 256
    ).required_interval(8, BUDGET)
    naive = run_experiment(
        threshold_scrub(cold_sizing, 8),
        dataclasses.replace(config),
        rates,
    )
    print(
        f"\nif sized for 300K ({units.format_seconds(cold_sizing)}) but run at "
        f"{TEMPERATURE_K:.0f}K: UE = {naive.uncorrectable} "
        "(temperature-blind sizing under-scrubs)"
    )


if __name__ == "__main__":
    main()
