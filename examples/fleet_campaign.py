#!/usr/bin/env python
"""Fleet campaign: FIT and availability for a heterogeneous DIMM population.

Builds a three-lot fleet programmatically (a nominal lot, a fast-drifting
vendor corner, and the same corner racked in a hot aisle), runs the
campaign over the process pool with a checkpoint journal, deliberately
interrupts it halfway, resumes it, and prints the fleet report - showing
that the resumed report is bit-identical to an uninterrupted run.

    python examples/fleet_campaign.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import units
from repro.fleet import FleetSpec, Lot, LotParameter, run_campaign
from repro.sim import SimulationConfig


def build_spec() -> FleetSpec:
    base = SimulationConfig(
        num_lines=512,
        region_size=512,
        horizon=1 * units.DAY,
        seed=2012,
        endurance=None,  # pure soft-error study
    )
    return FleetSpec(
        name="fleet-example",
        devices=24,
        policy="threshold",
        policy_kwargs={"interval": 2 * units.HOUR, "strength": 3, "threshold": 1},
        base_config=base,
        capacity_gib_per_device=16.0,
        lots=(
            Lot(
                name="nominal",
                weight=2,
                nu_mu_scale=LotParameter(mean=1.0, spread=0.03, low=0.0),
                nu_sigma_scale=LotParameter(mean=1.0, spread=0.04, low=0.0),
            ),
            Lot(
                name="fast-drift",
                weight=1,
                nu_mu_scale=LotParameter(mean=1.1, spread=0.05, low=0.0),
                nu_sigma_scale=LotParameter(mean=1.15, spread=0.08, low=0.0),
            ),
            Lot(
                name="fast-drift-hot",
                weight=1,
                nu_mu_scale=LotParameter(mean=1.1, spread=0.05, low=0.0),
                nu_sigma_scale=LotParameter(mean=1.15, spread=0.08, low=0.0),
                temperature_k=LotParameter(mean=315.0, spread=3.0, low=250.0),
            ),
        ),
    )


def main() -> None:
    spec = build_spec()
    print(f"campaign {spec.name!r}: {spec.devices} devices, "
          f"{len(spec.lots)} lots, {spec.device_hours:.0f} device-hours")

    # An uninterrupted run, for the bit-identity comparison below.
    print("running uninterrupted campaign (jobs=2)...")
    straight = run_campaign(spec, jobs=2)

    # The same campaign, interrupted halfway and resumed from its journal.
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "campaign.jsonl"
        print("running checkpointed campaign, stopping after 12 devices...")
        partial = run_campaign(spec, jobs=2, checkpoint=journal, stop_after=12)
        print(f"  checkpointed {partial.completed}/{partial.total} devices")
        print("resuming from the journal...")
        resumed = run_campaign(spec, jobs=2, checkpoint=journal, resume=True)
        print(f"  executed {resumed.executed} remaining devices")

    report = resumed.report
    identical = json.dumps(report.to_dict(), sort_keys=True) == json.dumps(
        straight.report.to_dict(), sort_keys=True
    )
    print(f"resumed report bit-identical to uninterrupted run: {identical}")

    print()
    print(f"{'lot':<16}{'devices':>8}{'UE':>8}{'FIT':>16}")
    for lot in report.lots:
        print(f"{lot.name:<16}{lot.devices:>8}"
              f"{lot.counts['uncorrectable']:>8}{lot.fit:>16.3g}")
    print()
    print(f"fleet FIT (simulated): {report.fit:10.1f} "
          f"[{report.fit_low:.1f}, {report.fit_high:.1f}]")
    print(f"fleet FIT ({spec.capacity_gib_per_device:g} GiB/device): "
          f"{report.fit_scaled:10.1f} "
          f"[{report.fit_scaled_low:.1f}, {report.fit_scaled_high:.1f}]")
    print(f"availability:          {report.availability:10.1%} "
          f"[{report.availability_low:.1%}, {report.availability_high:.1%}]")
    print(f"scrub energy per GiB:  {units.format_energy(report.energy_per_gib_j):>10}")


if __name__ == "__main__":
    main()
